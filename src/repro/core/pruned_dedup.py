"""PrunedDedup — the paper's Algorithm 2.

For each predicate level ``(S_l, N_l)`` (cheapest first), the pipeline

1. **collapses** obvious duplicates via the transitive closure of S_l,
2. **estimates** the lower bound M on the weight of the K-th answer group
   via the CPN bound on the N_l-graph, and
3. **prunes** every group whose upper bound cannot exceed M,

terminating early when exactly K groups remain.  The returned
:class:`PrunedDedupResult` carries the surviving groups plus per-level
statistics in the exact shape of the paper's Figures 2–4 tables
(n, m, M, n' — with n and n' as percentages of the starting records).

The level loop itself lives in :func:`run_level_pipeline`, shared with
the streaming engine (:class:`~repro.core.incremental.IncrementalTopK`)
so that batch and incremental queries degrade, guard, and count work
identically.  Passing an :class:`~repro.core.resilience.ExecutionPolicy`
arms fault containment and anytime degradation: user predicates are
wrapped in role-safe guards, and on deadline/budget exhaustion the
pipeline stops descending levels and returns the best answer derivable
from the current collapsed state, flagged ``degraded``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..predicates.base import PredicateLevel
from .lower_bound import LowerBoundEstimate, estimate_lower_bound
from .parallel import parallel_collapse, prime_neighbor_index, resolve_workers
from .prune import prune
from .records import GroupSet, RecordStore
from .resilience import (
    ExecutionPolicy,
    ExecutionState,
    StageRecord,
    StageRunner,
    guard_levels,
    necessary_compromised,
)
from .verification import PipelineCounters, VerificationContext


@dataclass
class LevelStats:
    """Statistics for one predicate level, mirroring Figures 2–4.

    Attributes:
        level_name: Name of the predicate level.
        n_groups_after_collapse: Group count after the S_l closure.
        n_pct: That count as a percentage of the starting records (the
            tables' ``n`` column).
        m: Rank at which K distinct groups were certified.
        bound: The weight lower bound M actually used for pruning (0.0
            when the level's necessary guard was compromised and pruning
            stood down).
        n_groups_after_prune: Group count after pruning.
        n_prime_pct: That count as a percentage of the starting records
            (the tables' ``n'`` column).
        certified: Whether the CPN bound reached K at this level (and
            the bound was safe to act on).
        counters: Verification work done by this level (predicate /
            signature evaluations, cache traffic, index builds, stage
            wall time); None for results produced without a context.
    """

    level_name: str
    n_groups_after_collapse: int
    n_pct: float
    m: int
    bound: float
    n_groups_after_prune: int
    n_prime_pct: float
    certified: bool
    counters: PipelineCounters | None = None


@dataclass
class PrunedDedupResult:
    """Output of :func:`pruned_dedup`.

    Attributes:
        groups: Surviving groups after the last executed level.
        stats: One :class:`LevelStats` per executed level.
        n_starting_records: Size of the input store.
        terminated_early: True when a level left at most K groups and the
            pipeline returned without running later levels.
        terminated_below_k: True when early termination happened with
            strictly fewer than K groups (pruning overshot the ask;
            later levels could never have grown the count back).
        counters: Total verification work across all executed levels.
        degraded: True when the execution policy stopped the run before
            all levels completed; ``groups`` then holds the best answer
            derivable from the last consistent collapsed state.
        degraded_reason: Why the run degraded (``"deadline"`` or
            ``"stage_budget"``); empty otherwise.
        stage_records: Per-stage completion trail
            (:class:`~repro.core.resilience.StageRecord`), including the
            abandoned stage of a degraded run.
    """

    groups: GroupSet
    stats: list[LevelStats] = field(default_factory=list)
    n_starting_records: int = 0
    terminated_early: bool = False
    terminated_below_k: bool = False
    counters: PipelineCounters | None = None
    degraded: bool = False
    degraded_reason: str = ""
    stage_records: list[StageRecord] = field(default_factory=list)

    @property
    def retained_fraction(self) -> float:
        """Surviving groups / starting records."""
        if self.n_starting_records == 0:
            return 0.0
        return len(self.groups) / self.n_starting_records


def run_level_pipeline(
    groups: GroupSet,
    k: int,
    levels: list[PredicateLevel],
    context: VerificationContext,
    prune_iterations: int = 2,
    refine_bound: bool = True,
    policy: ExecutionPolicy | None = None,
    execution_state: ExecutionState | None = None,
    skip_first_collapse: bool = False,
    n_starting_records: int | None = None,
    before_run: PipelineCounters | None = None,
    workers: int = 1,
) -> PrunedDedupResult:
    """Run the collapse/bound/prune loop of Algorithm 2 over *groups*.

    The shared engine behind :func:`pruned_dedup` (batch) and
    :meth:`~repro.core.incremental.IncrementalTopK.query` (streaming).

    Args:
        groups: Starting group set (singletons for a batch run, the
            maintained level-1 closure for the streaming engine).
        k: The K of the Top-K query.
        levels: Predicate levels in increasing cost/tightness order.
        context: Shared verification state (index + verdicts + counters).
        prune_iterations: Upper-bound refinement passes (Section 4.3).
        refine_bound: Re-run the full Min-fill CPN bound at checkpoints
            during lower-bound estimation.
        policy: Optional resilience contract; arms fault containment and
            anytime degradation.  Ignored when *execution_state* is
            given.
        execution_state: Pre-armed policy state — pass this when the
            deadline must span more than the level loop (e.g.
            ``topk_count_query`` shares one state with its scoring
            stage).
        skip_first_collapse: The first level's sufficient closure is
            already reflected in *groups* (the streaming engine
            maintains it incrementally).
        n_starting_records: Denominator for the stats' percentage
            columns; defaults to the store size.
        before_run: Counter snapshot marking the start of the run for
            the result's counter delta; defaults to "now" (the
            streaming engine passes an earlier snapshot so its initial
            collapse stage is included).
        workers: Worker processes for the sharded parallel execution
            layer (:mod:`repro.core.parallel`).  1 = serial; higher
            values shard the collapse and neighbor-verification stages
            with bit-identical results.
    """
    d = (
        n_starting_records
        if n_starting_records is not None
        else len(groups.store)
    )
    if before_run is None:
        before_run = context.counters.snapshot()
    state = execution_state
    if state is None and policy is not None:
        state = policy.start(context.counters)
    executed = guard_levels(levels, state) if state is not None else levels

    runner = StageRunner(context, state)
    result = PrunedDedupResult(
        groups=groups,
        n_starting_records=d,
        counters=context.counters,
    )
    current = groups

    with context.span(
        "pruned_dedup", k=k, n_levels=len(executed)
    ) as dedup_span:

        def finalize(degraded: bool) -> PrunedDedupResult:
            result.groups = current
            result.degraded = degraded
            result.degraded_reason = runner.reason if degraded else ""
            result.stage_records = runner.records
            result.counters = context.counters.delta(before_run)
            dedup_span.set_attributes(
                n_groups=len(current),
                terminated_early=result.terminated_early,
                degraded=degraded,
            )
            return result

        for index, level in enumerate(executed):
            before_level = context.counters.snapshot()
            with context.span("level", level=level.name) as level_span:
                if not (skip_first_collapse and index == 0):
                    collapsed = runner.run(
                        level.name,
                        "collapse",
                        lambda: parallel_collapse(
                            current, level.sufficient, workers, context
                        ),
                    )
                    if runner.aborted:
                        return finalize(degraded=True)
                    current = collapsed
                n_after_collapse = len(current)
                level_span.set_attribute("n_after_collapse", n_after_collapse)

                if workers > 1:
                    # Pre-verify every representative's N-neighbor list
                    # across the worker pool; the lower-bound and prune
                    # stages below are then answered from the primed
                    # index memo.  The stage (and its shard spans) is
                    # transient: it exists only in parallel runs.
                    runner.run(
                        level.name,
                        "neighbors",
                        lambda: prime_neighbor_index(
                            current, level.necessary, workers, context
                        ),
                        transient=True,
                    )
                    if runner.aborted:
                        return finalize(degraded=True)

                estimate: LowerBoundEstimate | None = runner.run(
                    level.name,
                    "lower_bound",
                    lambda: estimate_lower_bound(
                        current,
                        level.necessary,
                        k,
                        refine=refine_bound,
                        context=context,
                    ),
                )
                if runner.aborted:
                    return finalize(degraded=True)

                bound = estimate.bound
                certified = estimate.certified
                if necessary_compromised(level):
                    # Containment dropped blocking keys of the necessary
                    # predicate at this level: its neighbor graph may be
                    # missing edges, so both the bound and the upper
                    # bounds built on it could over-prune.  Stand
                    # pruning down (role-safe).
                    bound = 0.0
                    certified = False
                level_span.set_attributes(
                    m=estimate.m, bound=bound, certified=certified
                )

                pruned = runner.run(
                    level.name,
                    "prune",
                    lambda: prune(
                        current,
                        level.necessary,
                        bound,
                        iterations=prune_iterations,
                        context=context,
                    ),
                )
                if runner.aborted:
                    return finalize(degraded=True)
                current = pruned.retained
                level_span.set_attribute("n_after_prune", len(current))

                result.stats.append(
                    LevelStats(
                        level_name=level.name,
                        n_groups_after_collapse=n_after_collapse,
                        n_pct=100.0 * n_after_collapse / d if d else 0.0,
                        m=estimate.m,
                        bound=bound,
                        n_groups_after_prune=len(current),
                        n_prime_pct=100.0 * len(current) / d if d else 0.0,
                        certified=certified,
                        counters=context.counters.delta(before_level),
                    )
                )
                # Pruning can only shrink the group count from here on
                # (collapse merges, prune drops), so at <= k groups
                # later levels are pointless: at k they are the
                # certified answer, below k the remaining groups are all
                # that can ever be returned.
                if len(current) <= k:
                    result.terminated_early = True
                    result.terminated_below_k = len(current) < k
                    return finalize(degraded=False)

        return finalize(degraded=False)


def pruned_dedup(
    store: RecordStore,
    k: int,
    levels: list[PredicateLevel],
    prune_iterations: int = 2,
    refine_bound: bool = True,
    context: VerificationContext | None = None,
    policy: ExecutionPolicy | None = None,
    execution_state: ExecutionState | None = None,
    workers: int | None = None,
) -> PrunedDedupResult:
    """Run Algorithm 2 (minus the final clustering) on *store*.

    Args:
        store: The raw records.
        k: The K of the Top-K query.
        levels: Predicate levels in increasing cost/tightness order.
        prune_iterations: Passes of upper-bound refinement (Section 4.3).
        refine_bound: Re-run the full Min-fill CPN bound at checkpoints
            during lower-bound estimation (tighter M, more work).
        context: Shared verification state (neighbor index + pair-verdict
            cache + counters).  A fresh one is created when omitted;
            passing one lets callers accumulate counters across runs.
        policy: Optional :class:`~repro.core.resilience.ExecutionPolicy`
            — contain predicate faults role-safely and return a degraded
            (but well-formed, flagged) answer on deadline/budget
            exhaustion instead of hanging or raising.  With no policy,
            behaviour is bit-identical to the unguarded pipeline.
        execution_state: Pre-armed policy state (advanced; used by
            ``topk_count_query`` to share one deadline across pruning
            and scoring).
        workers: Worker processes for the sharded parallel execution
            layer (:mod:`repro.core.parallel`); results are
            bit-identical to the serial path at any count.  ``None``
            consults the ``REPRO_WORKERS`` environment variable
            (default 1 = serial).

    Returns:
        The surviving :class:`GroupSet` plus per-level statistics.  Apply
        the final pairwise criterion P to the survivors with
        :mod:`repro.core.topk` to obtain actual answers.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not levels:
        raise ValueError("need at least one predicate level")

    if context is None:
        context = VerificationContext()
    return run_level_pipeline(
        GroupSet.singletons(store),
        k,
        levels,
        context=context,
        prune_iterations=prune_iterations,
        refine_bound=refine_bound,
        policy=policy,
        execution_state=execution_state,
        n_starting_records=len(store),
        workers=resolve_workers(workers),
    )
