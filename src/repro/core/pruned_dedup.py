"""PrunedDedup — the paper's Algorithm 2.

For each predicate level ``(S_l, N_l)`` (cheapest first), the pipeline

1. **collapses** obvious duplicates via the transitive closure of S_l,
2. **estimates** the lower bound M on the weight of the K-th answer group
   via the CPN bound on the N_l-graph, and
3. **prunes** every group whose upper bound cannot exceed M,

terminating early when exactly K groups remain.  The returned
:class:`PrunedDedupResult` carries the surviving groups plus per-level
statistics in the exact shape of the paper's Figures 2–4 tables
(n, m, M, n' — with n and n' as percentages of the starting records).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..predicates.base import PredicateLevel
from .collapse import collapse
from .lower_bound import LowerBoundEstimate, estimate_lower_bound
from .prune import prune
from .records import GroupSet, RecordStore
from .verification import PipelineCounters, VerificationContext


@dataclass
class LevelStats:
    """Statistics for one predicate level, mirroring Figures 2–4.

    Attributes:
        level_name: Name of the predicate level.
        n_groups_after_collapse: Group count after the S_l closure.
        n_pct: That count as a percentage of the starting records (the
            tables' ``n`` column).
        m: Rank at which K distinct groups were certified.
        bound: The weight lower bound M.
        n_groups_after_prune: Group count after pruning.
        n_prime_pct: That count as a percentage of the starting records
            (the tables' ``n'`` column).
        certified: Whether the CPN bound reached K at this level.
        counters: Verification work done by this level (predicate /
            signature evaluations, cache traffic, index builds, stage
            wall time); None for results produced without a context.
    """

    level_name: str
    n_groups_after_collapse: int
    n_pct: float
    m: int
    bound: float
    n_groups_after_prune: int
    n_prime_pct: float
    certified: bool
    counters: PipelineCounters | None = None


@dataclass
class PrunedDedupResult:
    """Output of :func:`pruned_dedup`.

    Attributes:
        groups: Surviving groups after the last executed level.
        stats: One :class:`LevelStats` per executed level.
        n_starting_records: Size of the input store.
        terminated_early: True when a level left at most K groups and the
            pipeline returned without running later levels.
        terminated_below_k: True when early termination happened with
            strictly fewer than K groups (pruning overshot the ask;
            later levels could never have grown the count back).
        counters: Total verification work across all executed levels.
    """

    groups: GroupSet
    stats: list[LevelStats] = field(default_factory=list)
    n_starting_records: int = 0
    terminated_early: bool = False
    terminated_below_k: bool = False
    counters: PipelineCounters | None = None

    @property
    def retained_fraction(self) -> float:
        """Surviving groups / starting records."""
        if self.n_starting_records == 0:
            return 0.0
        return len(self.groups) / self.n_starting_records


def pruned_dedup(
    store: RecordStore,
    k: int,
    levels: list[PredicateLevel],
    prune_iterations: int = 2,
    refine_bound: bool = True,
    context: VerificationContext | None = None,
) -> PrunedDedupResult:
    """Run Algorithm 2 (minus the final clustering) on *store*.

    Args:
        store: The raw records.
        k: The K of the Top-K query.
        levels: Predicate levels in increasing cost/tightness order.
        prune_iterations: Passes of upper-bound refinement (Section 4.3).
        refine_bound: Re-run the full Min-fill CPN bound at checkpoints
            during lower-bound estimation (tighter M, more work).
        context: Shared verification state (neighbor index + pair-verdict
            cache + counters).  A fresh one is created when omitted;
            passing one lets callers accumulate counters across runs.

    Returns:
        The surviving :class:`GroupSet` plus per-level statistics.  Apply
        the final pairwise criterion P to the survivors with
        :mod:`repro.core.topk` to obtain actual answers.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not levels:
        raise ValueError("need at least one predicate level")

    if context is None:
        context = VerificationContext()
    d = len(store)
    result = PrunedDedupResult(
        groups=GroupSet.singletons(store),
        n_starting_records=d,
        counters=context.counters,
    )
    current = result.groups
    before_run = context.counters.snapshot()
    for level in levels:
        before_level = context.counters.snapshot()
        with context.stage("collapse"):
            current = collapse(current, level.sufficient)
        n_after_collapse = len(current)

        with context.stage("lower_bound"):
            estimate: LowerBoundEstimate = estimate_lower_bound(
                current,
                level.necessary,
                k,
                refine=refine_bound,
                context=context,
            )
        with context.stage("prune"):
            pruned = prune(
                current,
                level.necessary,
                estimate.bound,
                iterations=prune_iterations,
                context=context,
            )
        current = pruned.retained

        result.stats.append(
            LevelStats(
                level_name=level.name,
                n_groups_after_collapse=n_after_collapse,
                n_pct=100.0 * n_after_collapse / d if d else 0.0,
                m=estimate.m,
                bound=estimate.bound,
                n_groups_after_prune=len(current),
                n_prime_pct=100.0 * len(current) / d if d else 0.0,
                certified=estimate.certified,
                counters=context.counters.delta(before_level),
            )
        )
        # Pruning can only shrink the group count from here on (collapse
        # merges, prune drops), so at <= k groups later levels are
        # pointless: at k they are the certified answer, below k the
        # remaining groups are all that can ever be returned.
        if len(current) <= k:
            result.groups = current
            result.terminated_early = True
            result.terminated_below_k = len(current) < k
            result.counters = context.counters.delta(before_run)
            return result

    result.groups = current
    result.counters = context.counters.delta(before_run)
    return result
