"""Core pipeline: records, PrunedDedup stages, and query engines."""

from .collapse import collapse, collapse_records
from .health import (
    HealthCheck,
    HealthMonitor,
    HealthSnapshot,
)
from .incremental import DeadLetter, IncrementalTopK
from .persistence import (
    CheckpointError,
    CheckpointWriteError,
    DurabilityPolicy,
    DurableStateStore,
    PersistenceError,
    RecoveryInfo,
    StateAuditError,
    WalCorruptionError,
    has_state,
)
from .retry import (
    BREAKERS,
    BreakerOpen,
    BreakerRegistry,
    CircuitBreaker,
    RetryExhausted,
    RetryPolicy,
    fire_fault,
    install_fault_hook,
)
from .lower_bound import (
    LowerBoundEstimate,
    estimate_lower_bound,
    estimate_lower_bound_naive,
)
from .parallel import (
    ShardPlan,
    group_fingerprint,
    parallel_collapse,
    prime_neighbor_index,
    resolve_workers,
)
from .prune import PruneResult, prune
from .pruned_dedup import (
    LevelStats,
    PrunedDedupResult,
    pruned_dedup,
    run_level_pipeline,
)
from .rank_query import (
    RankQueryResult,
    RankedGroup,
    thresholded_rank_query,
    topk_rank_query,
)
from .records import Group, GroupSet, Record, RecordStore, merge_groups
from .resilience import (
    ExecutionPolicy,
    ExecutionState,
    GuardedPredicate,
    GuardedScorer,
    ResilienceExhausted,
    StageRecord,
    StageRunner,
    guard_levels,
)
from .verification import PipelineCounters, VerificationContext
from .topk import (
    EntityGroup,
    RankedAnswer,
    TopKQueryResult,
    group_score_matrix,
    topk_count_query,
)

__all__ = [
    "BREAKERS",
    "BreakerOpen",
    "BreakerRegistry",
    "CheckpointError",
    "CheckpointWriteError",
    "CircuitBreaker",
    "DeadLetter",
    "DurabilityPolicy",
    "DurableStateStore",
    "EntityGroup",
    "HealthCheck",
    "HealthMonitor",
    "HealthSnapshot",
    "ExecutionPolicy",
    "ExecutionState",
    "GuardedPredicate",
    "GuardedScorer",
    "IncrementalTopK",
    "Group",
    "GroupSet",
    "LevelStats",
    "LowerBoundEstimate",
    "PersistenceError",
    "PipelineCounters",
    "PruneResult",
    "PrunedDedupResult",
    "RankQueryResult",
    "RecoveryInfo",
    "RankedAnswer",
    "RankedGroup",
    "Record",
    "RecordStore",
    "ResilienceExhausted",
    "RetryExhausted",
    "RetryPolicy",
    "StageRecord",
    "StageRunner",
    "ShardPlan",
    "StateAuditError",
    "TopKQueryResult",
    "VerificationContext",
    "WalCorruptionError",
    "collapse",
    "collapse_records",
    "estimate_lower_bound",
    "estimate_lower_bound_naive",
    "fire_fault",
    "group_fingerprint",
    "group_score_matrix",
    "guard_levels",
    "has_state",
    "install_fault_hook",
    "merge_groups",
    "parallel_collapse",
    "prime_neighbor_index",
    "prune",
    "pruned_dedup",
    "resolve_workers",
    "run_level_pipeline",
    "thresholded_rank_query",
    "topk_count_query",
    "topk_rank_query",
]
