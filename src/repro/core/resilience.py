"""Resilient execution: fault containment, deadlines, anytime degradation.

The paper's guarantees (Sections 4-5) hold only when the user-supplied
sufficient/necessary predicates and the final scorer honour their roles
and terminate.  Over open-ended, constantly evolving sources — the
system's stated regime — predicates are hand-tuned and inputs hostile,
so a single raising predicate or pathological slow pair must not crash
or corrupt a whole query.  This module contains such failures:

* :class:`ExecutionPolicy` declares the resilience contract of one query
  run: a wall-clock deadline, a per-stage evaluation budget, a per-call
  timeout for user code, and what to do on user-code exceptions
  (``raise`` or ``degrade``).
* :class:`GuardedPredicate` / :class:`GuardedScorer` wrap user code and
  substitute *role-safe* fallback verdicts on failure: a failing
  **sufficient** predicate answers False (never over-merge), a failing
  **necessary** predicate answers True (never over-prune), a failing
  scorer answers the neutral score 0.0.  Every containment is counted
  in the run's :class:`~repro.core.verification.PipelineCounters`.
* :class:`StageRunner` gives the query pipelines one place to execute a
  stage under the policy; on deadline/budget exhaustion the stage is
  abandoned, the pipeline keeps its last consistent state, and the
  result is returned flagged ``degraded`` with a per-stage
  :class:`StageRecord` trail instead of hanging or raising.

Timeouts are **cooperative**: pure-Python code cannot preempt a call
that never returns.  The per-call timeout marks calls that exceeded the
budget after the fact (their verdict is replaced by the role-safe
fallback), and the deadline is checked before every guarded call, so a
*bounded* stall delays the query by at most one stall before the
deadline fires.  A truly infinite loop inside a predicate is out of
scope for in-process containment (run under ``pytest-timeout`` or an
external supervisor for that).

With no policy installed, none of this machinery engages and pipeline
results are bit-identical to the unguarded ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace as _dc_replace
from typing import TYPE_CHECKING, Callable, TypeVar

from ..predicates.base import Predicate, PredicateLevel
from ..scoring.pairwise import PairwiseScorer

if TYPE_CHECKING:
    from ..core.records import Record
    from .verification import PipelineCounters, VerificationContext

T = TypeVar("T")

#: Reasons a run can degrade (``ResilienceExhausted.reason`` /
#: ``PrunedDedupResult.degraded_reason`` values).
REASON_DEADLINE = "deadline"
REASON_STAGE_BUDGET = "stage_budget"


class ResilienceExhausted(Exception):
    """Internal control-flow signal: the policy's deadline or budget is
    spent and the current stage must be abandoned.

    Never escapes the query pipelines — they catch it and return a
    degraded result.  Carries the machine-readable :attr:`reason`.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class ExecutionPolicy:
    """Resilience contract for one query run.

    Attributes:
        deadline_seconds: Wall-clock budget for the whole query, counted
            from :meth:`start`.  When it expires the pipeline stops
            descending predicate levels and returns the best answer
            derivable from the current collapsed state, flagged
            ``degraded``.  None = no deadline.
        max_stage_evaluations: Cap on guarded predicate/scorer calls per
            pipeline stage; exhaustion degrades exactly like a deadline.
            None = unlimited.
        call_timeout_seconds: Per-call wall budget for user predicates
            and scorers.  A call that returns but took longer is deemed
            unreliable and its verdict replaced with the role-safe
            fallback (cooperative — see the module docstring).  None =
            no per-call timeout.
        on_error: ``"degrade"`` substitutes role-safe fallbacks for
            exceptions raised by user predicates/scorers (counted in the
            pipeline counters); ``"raise"`` propagates them unchanged.
    """

    deadline_seconds: float | None = None
    max_stage_evaluations: int | None = None
    call_timeout_seconds: float | None = None
    on_error: str = "degrade"

    def __post_init__(self) -> None:
        if self.on_error not in ("raise", "degrade"):
            raise ValueError(
                f"on_error must be 'raise' or 'degrade', got {self.on_error!r}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds < 0:
            raise ValueError("deadline_seconds must be >= 0")
        if self.max_stage_evaluations is not None and self.max_stage_evaluations < 0:
            raise ValueError("max_stage_evaluations must be >= 0")
        if self.call_timeout_seconds is not None and self.call_timeout_seconds < 0:
            raise ValueError("call_timeout_seconds must be >= 0")

    def start(self, counters: "PipelineCounters") -> "ExecutionState":
        """Arm the policy: start the deadline clock now."""
        return ExecutionState(self, counters)

    def with_deadline(self, deadline_seconds: float | None) -> "ExecutionPolicy":
        """This policy with its deadline replaced (a new frozen instance).

        The query service keeps one base policy (error containment,
        stage budgets) and stamps each admitted request's *remaining*
        deadline onto it — the time a request spent queued counts
        against its budget, so an admitted-but-slow query degrades
        instead of overstaying.
        """
        return _dc_replace(self, deadline_seconds=deadline_seconds)


class ExecutionState:
    """Armed, mutable runtime of an :class:`ExecutionPolicy`.

    One state spans one query run (for ``topk_count_query`` it covers
    both the pruning pipeline and the scoring stage, so the deadline is
    global).  Guarded wrappers call :meth:`tick` once per user-code
    call; stage boundaries call :meth:`begin_stage`/:meth:`check`.
    """

    def __init__(self, policy: ExecutionPolicy, counters: "PipelineCounters"):
        self.policy = policy
        self.counters = counters
        self._deadline_at = (
            None
            if policy.deadline_seconds is None
            else time.perf_counter() + policy.deadline_seconds
        )
        self._stage_calls = 0
        self.exhausted_reason: str | None = None

    def begin_stage(self) -> None:
        """Reset the per-stage evaluation budget."""
        self._stage_calls = 0

    def tick(self) -> None:
        """Account one guarded call; raise when the policy is exhausted."""
        self._stage_calls += 1
        budget = self.policy.max_stage_evaluations
        if budget is not None and self._stage_calls > budget:
            self._exhaust(REASON_STAGE_BUDGET)
        self._check_deadline()

    def check(self) -> None:
        """Raise :class:`ResilienceExhausted` if the policy is spent."""
        if self.exhausted_reason is not None:
            raise ResilienceExhausted(self.exhausted_reason)
        self._check_deadline()

    def _check_deadline(self) -> None:
        if self._deadline_at is not None and time.perf_counter() > self._deadline_at:
            self._exhaust(REASON_DEADLINE)

    def _exhaust(self, reason: str) -> None:
        self.exhausted_reason = reason
        raise ResilienceExhausted(reason)


class GuardedPredicate(Predicate):
    """Role-aware fault-containment wrapper around a user predicate.

    Exceptions from ``evaluate`` are replaced (under ``on_error:
    degrade``) with the role-safe fallback: False for a sufficient
    predicate, True for a necessary one.  Exceptions from
    ``blocking_keys`` yield no keys — safe for the sufficient role (the
    record simply collapses with nobody) but *compromising* for the
    necessary role (missing N-edges could over-prune), so the wrapper
    counts :attr:`keying_failures` and the pipelines stand pruning down
    for any level whose necessary guard reports one.

    The signature / count-filtering fast paths are deliberately not
    forwarded: every verdict must pass through the guarded ``evaluate``
    so faults cannot bypass containment.  ``symmetric`` is forced False
    so fallback verdicts are never written into the cross-stage
    pair-verdict cache (they are policy artifacts, not pure functions
    of the records).
    """

    symmetric = False

    def __init__(self, inner: Predicate, role: str, state: ExecutionState):
        if role not in ("sufficient", "necessary"):
            raise ValueError(f"role must be 'sufficient' or 'necessary', got {role!r}")
        self._inner = inner
        self._state = state
        self.role = role
        self.fallback_verdict = role == "necessary"
        self.name = f"guarded[{inner.name}]"
        self.cost = inner.cost
        self.key_implies_match = inner.key_implies_match
        self.keying_failures = 0

    @property
    def inner(self) -> Predicate:
        """The wrapped user predicate."""
        return self._inner

    def evaluate(self, a: "Record", b: "Record") -> bool:
        state = self._state
        state.tick()
        timeout = state.policy.call_timeout_seconds
        started = time.perf_counter() if timeout is not None else 0.0
        try:
            verdict = bool(self._inner.evaluate(a, b))
        except Exception:
            if state.policy.on_error == "raise":
                raise
            state.counters.predicate_errors_contained += 1
            return self.fallback_verdict
        if timeout is not None and time.perf_counter() - started > timeout:
            state.counters.predicate_timeouts_contained += 1
            return self.fallback_verdict
        return verdict

    def blocking_keys(self, record: "Record"):
        state = self._state
        try:
            return list(self._inner.blocking_keys(record))
        except Exception:
            if state.policy.on_error == "raise":
                raise
            state.counters.keying_errors_contained += 1
            self.keying_failures += 1
            return []


class GuardedScorer(PairwiseScorer):
    """Fault-containment wrapper around the final pairwise criterion P.

    A raising or over-slow scorer call yields the neutral score
    *fallback* (default 0.0: no attraction, no repulsion), so one bad
    pair cannot crash the scoring stage or skew a segmentation with a
    garbage magnitude.
    """

    def __init__(
        self,
        inner: PairwiseScorer,
        state: ExecutionState,
        fallback: float = 0.0,
    ):
        self._inner = inner
        self._state = state
        self._fallback = fallback

    def score(self, a: "Record", b: "Record") -> float:
        state = self._state
        state.tick()
        timeout = state.policy.call_timeout_seconds
        started = time.perf_counter() if timeout is not None else 0.0
        try:
            value = float(self._inner.score(a, b))
        except Exception:
            if state.policy.on_error == "raise":
                raise
            state.counters.scorer_errors_contained += 1
            return self._fallback
        if timeout is not None and time.perf_counter() - started > timeout:
            state.counters.scorer_errors_contained += 1
            return self._fallback
        return value


@dataclass(frozen=True)
class StageRecord:
    """Completion record of one pipeline stage of one level.

    Attributes:
        level_name: Name of the predicate level (or ``"scoring"`` for
            the final scoring stage of ``topk_count_query``).
        stage: Stage name (``collapse`` / ``lower_bound`` / ``prune`` /
            ``rank_prune`` / ``score``).
        completed: False when the stage was abandoned by the policy.
        reason: Why an incomplete stage stopped (``deadline`` or
            ``stage_budget``); empty for completed stages.
    """

    level_name: str
    stage: str
    completed: bool
    reason: str = ""


class StageRunner:
    """Execute pipeline stages under an (optional) execution policy.

    Wraps each stage in the context's wall-clock timer, resets the
    per-stage budget, and converts :class:`ResilienceExhausted` into an
    :attr:`aborted` flag plus an incomplete :class:`StageRecord` — the
    calling pipeline then finalizes a degraded result from its last
    consistent state.  With no state installed this adds only the
    completion records.
    """

    def __init__(
        self,
        context: "VerificationContext",
        state: ExecutionState | None = None,
    ):
        self._context = context
        self.state = state
        self.records: list[StageRecord] = []
        self.aborted = False
        self.reason = ""

    def run(
        self,
        level_name: str,
        stage: str,
        fn: Callable[[], T],
        transient: bool = False,
    ) -> T | None:
        """Run *fn* as stage *stage* of level *level_name*.

        Returns *fn*'s value, or None when the policy aborted the stage
        (check :attr:`aborted` — a stage may also legitimately return
        None).

        *transient* marks the stage's tracer span as existing only under
        some execution configurations (e.g. the parallel layer's
        neighbor-priming sweeps), excluding it from the deterministic
        trace export; counters and :class:`StageRecord` bookkeeping are
        unaffected.
        """
        context = self._context
        state = self.state
        if state is not None:
            state.begin_stage()
        try:
            with context.span(stage, transient=transient, level=level_name):
                with context.stage(stage):
                    if state is not None:
                        state.check()
                    value = fn()
        except ResilienceExhausted as exc:
            self.aborted = True
            self.reason = exc.reason
            self.records.append(StageRecord(level_name, stage, False, exc.reason))
            context.event(
                "degraded", level=level_name, stage=stage, reason=exc.reason
            )
            metrics = context.metrics
            if metrics.enabled:
                metrics.counter("repro_stages_aborted_total", reason=exc.reason).inc()
            return None
        self.records.append(StageRecord(level_name, stage, True))
        metrics = context.metrics
        if metrics.enabled:
            metrics.counter("repro_stages_completed_total", stage=stage).inc()
        return value


def guard_levels(
    levels: list[PredicateLevel], state: ExecutionState
) -> list[PredicateLevel]:
    """Wrap every level's predicates in role-aware guards."""
    return [
        PredicateLevel(
            sufficient=GuardedPredicate(level.sufficient, "sufficient", state),
            necessary=GuardedPredicate(level.necessary, "necessary", state),
            name=level.name,
        )
        for level in levels
    ]


def necessary_compromised(level: PredicateLevel) -> bool:
    """True when the level's necessary predicate is guarded and lost
    blocking keys to containment — its neighbor graph may be missing
    edges, so any pruning based on it could over-prune."""
    necessary = level.necessary
    return (
        isinstance(necessary, GuardedPredicate)
        and necessary.keying_failures > 0
    )
