"""Incremental Top-K over evolving sources.

The paper's opening motivation: "sources that are constantly evolving,
or are otherwise too vast or open-ended to be amenable to offline
deduplication".  :class:`IncrementalTopK` keeps the expensive part of
the pipeline — the sufficient-predicate closure of the *first* level —
up to date as records stream in: each arriving record is unioned with
existing groups through the predicate's blocking keys, so a query only
pays for bound-estimation, pruning and the later levels on the *current
collapsed state*, never re-tokenizing history.

Queries are answered through the same machinery as the batch engine
(:func:`repro.core.pruned_dedup.run_level_pipeline`), so results match
a from-scratch :func:`repro.core.pruned_dedup.pruned_dedup` run on the
accumulated records (verified by the test suite) — including execution
policies: a query armed with an
:class:`~repro.core.resilience.ExecutionPolicy` degrades anytime instead
of hanging.

Streams are hardened against poison records: an insert whose keying or
pairwise verification raises is **quarantined** into an inspectable,
bounded dead-letter list (:attr:`IncrementalTopK.dead_letters`) instead
of stopping the stream or corrupting the maintained closure.

Stream state can be made **durable** (:mod:`repro.core.persistence`):
with a state directory configured, every ``add`` is journaled to a
write-ahead log *before* engine state mutates, :meth:`checkpoint`
snapshots the closure atomically, and :meth:`restore` rebuilds the
engine after a crash to exactly the state of replaying the surviving
prefix of inserts — validated by :meth:`audit` before being accepted.
With no state directory, behaviour is bit-identical to the in-memory
engine.
"""

from __future__ import annotations

import math
from collections import defaultdict, deque
from collections.abc import Hashable, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..graphs.union_find import UnionFind
from ..predicates.base import PredicateLevel
from .persistence import (
    DurabilityPolicy,
    DurableStateStore,
    PersistenceError,
    RecoveryInfo,
    StateAuditError,
    WalCorruptionError,
    as_policy,
)
from .parallel import resolve_workers
from .pruned_dedup import PrunedDedupResult, run_level_pipeline
from .records import Group, GroupSet, Record, RecordStore, merge_groups
from .resilience import ExecutionPolicy
from .verification import VerificationContext


@dataclass(frozen=True)
class EngineSnapshotState:
    """Immutable copy of the engine state one query generation serves.

    Produced by :meth:`IncrementalTopK.snapshot_state` under the
    single-writer discipline: the writer (and only the writer) freezes
    the state between inserts, so the copy is never torn.  Everything
    inside is either immutable (:class:`~repro.core.records.Record`)
    or copied at freeze time (the component membership lists), so a
    reader holding this snapshot is isolated from every later insert.

    Attributes:
        records: All records at freeze time, in id order — a tuple for
            the in-memory store, or an immutable lazily-materialising
            :class:`~repro.storage.columnar.FrozenRecordView` over the
            mapped generation for the columnar store (either way,
            isolated from every later insert).
        components: The level-1 sufficient closure as member-id tuples,
            ordered by smallest member id (deterministic across runs).
        generation: The engine :attr:`~IncrementalTopK.version` the
            snapshot reflects.
        entries_applied: WAL position at freeze time.
        dead_letters: Quarantine size at freeze time (a health signal,
            not replayable state).
    """

    records: Sequence
    components: tuple[tuple[int, ...], ...]
    generation: int
    entries_applied: int
    dead_letters: int


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined stream record.

    Attributes:
        fields: The record's raw fields, as submitted.
        weight: The record's weight, as submitted.
        error: ``repr`` of the exception that poisoned the insert.
        stage: Where the insert failed: ``"keying"`` (the sufficient
            predicate's ``blocking_keys`` raised) or ``"evaluate"``
            (pairwise verification against an existing record raised).
    """

    fields: Mapping[str, str]
    weight: float
    error: str
    stage: str


def _walk_root(parent: list[int], record_id: int) -> int:
    """Bounded, non-mutating root walk (safe on corrupt parent arrays)."""
    node = record_id
    for _ in range(len(parent) + 1):
        if not 0 <= node < len(parent):
            raise StateAuditError(
                f"union-find parent of {record_id} points out of range "
                f"({node})"
            )
        if parent[node] == node:
            return node
        node = parent[node]
    raise StateAuditError(
        f"union-find parent chain from {record_id} does not terminate (cycle)"
    )


class IncrementalTopK:
    """Maintain Top-K count query state over an insert-only record stream.

    Args:
        levels: Predicate levels, cheapest first (as for PrunedDedup).
            The first level's sufficient predicate is maintained
            incrementally; later levels run at query time on the
            collapsed state.
        max_block_verifications: Per arriving record, cap on how many
            same-key records are verified pairwise for non-equivalence
            sufficient predicates (newest first) — bounds per-insert
            cost on pathological keys.
        verdict_cache_limit: Cap on cached necessary-predicate pair
            verdicts per predicate.  Records are immutable and ids are
            stable, so verdicts stay valid across inserts and queries;
            past this size the oldest verdicts are evicted (bounded
            FIFO) to bound memory on long streams without dropping
            verdicts the query in flight still needs.
        quarantine: Divert records whose keying/verification raises into
            :attr:`dead_letters` (the default — one poison record cannot
            stop the stream).  With False, such exceptions propagate to
            the ``add`` caller.
        dead_letter_limit: Retain at most this many quarantined records
            (FIFO: the oldest are evicted first, counted in
            :attr:`dead_letters_dropped`) — a long hostile stream must
            not grow memory without bound.
        durability: A state directory (or full
            :class:`~repro.core.persistence.DurabilityPolicy`) to
            journal inserts into.  Must not already hold stream state —
            resume an existing directory with :meth:`restore` instead.
            None (the default) keeps the engine purely in-memory.
        store: ``"memory"`` (the default) keeps records as resident
            Python objects and writes inline-JSON checkpoints;
            ``"columnar"`` keeps records in a
            :class:`~repro.storage.columnar.HybridRecordList` (an
            immutable mapped base generation plus an in-memory tail)
            and compacts checkpoints into ``columnar-<entries>.col``
            array sidecars, so a restore cold-starts by mapping the
            sidecar instead of parsing JSON.  Answers are bit-identical
            between the two.
        scorer: Final pairwise criterion P
            (:class:`~repro.scoring.pairwise.PairwiseScorer`), required
            only for ``query(kind="interval")`` — interval semantics
            enumerate scored dedup worlds, which the count path never
            needs.  None (the default) leaves interval queries
            unavailable.
        tracer: Span sink (:class:`repro.observability.Tracer`) for
            query traces; the zero-overhead default otherwise.
        metrics: Metric sink (:class:`repro.observability.MetricsRegistry`)
            fed by queries, quarantines, and — when durability is
            configured — WAL appends and fsync latencies.
    """

    def __init__(
        self,
        levels: list[PredicateLevel],
        max_block_verifications: int = 64,
        verdict_cache_limit: int = 2_000_000,
        quarantine: bool = True,
        dead_letter_limit: int = 1000,
        durability: DurabilityPolicy | str | Path | None = None,
        store: str = "memory",
        scorer=None,
        tracer=None,
        metrics=None,
    ):
        if not levels:
            raise ValueError("need at least one predicate level")
        if dead_letter_limit < 0:
            raise ValueError(
                f"dead_letter_limit must be >= 0, got {dead_letter_limit}"
            )
        if store not in ("memory", "columnar"):
            raise ValueError(
                f"store must be 'memory' or 'columnar', got {store!r}"
            )
        self._levels = levels
        self._scorer = scorer
        self._max_verifications = max_block_verifications
        self._quarantine = quarantine
        self._store_kind = store
        if store == "columnar":
            from ..storage.columnar import HybridRecordList

            self._records: Sequence[Record] = HybridRecordList()
        else:
            self._records = []
        self._uf = UnionFind(0)
        self._key_members: dict[Hashable, list[int]] = defaultdict(list)
        self._version = 0
        self._entries_applied = 0
        # Keyed by (kind, k, policy, workers) plus the interval-specific
        # (r, min_probability) tail; values are (version, result).
        self._query_cache: dict[tuple, tuple[int, object]] = {}
        self._dead_letters: deque[DeadLetter] = deque()
        self._dead_letter_limit = dead_letter_limit
        self._dead_letters_dropped = 0
        self._verification = VerificationContext(
            verdict_cache_limit=verdict_cache_limit,
            tracer=tracer,
            metrics=metrics,
        )
        self.last_recovery: RecoveryInfo | None = None
        policy = as_policy(durability)
        if policy is None:
            self._durable: DurableStateStore | None = None
        else:
            self._durable = DurableStateStore(policy)
            self._durable.set_metrics(self._verification.metrics)
            self._durable.open_fresh()

    @property
    def verification(self) -> VerificationContext:
        """The stream-lifetime verification context (counters included)."""
        return self._verification

    @property
    def dead_letters(self) -> list[DeadLetter]:
        """Quarantined records, in arrival order (inspect and replay)."""
        return list(self._dead_letters)

    @property
    def dead_letters_dropped(self) -> int:
        """Quarantined records evicted from the bounded dead-letter list."""
        return self._dead_letters_dropped

    def __len__(self) -> int:
        return len(self._records)

    @property
    def version(self) -> int:
        """Monotone counter bumped on every insert."""
        return self._version

    @property
    def entries_applied(self) -> int:
        """Insert *attempts* applied (quarantined ones included) — the
        engine's position in its write-ahead log."""
        return self._entries_applied

    @property
    def store_kind(self) -> str:
        """The record-store backend: ``"memory"`` or ``"columnar"``."""
        return self._store_kind

    @property
    def durable(self) -> bool:
        """True when inserts are journaled to a state directory."""
        return self._durable is not None

    @property
    def durability_degraded(self) -> bool:
        """True when journaling was suspended by a persistent storage
        fault (``ENOSPC``, retry exhaustion): live answers stay correct,
        but inserts since the suspension are not journaled — a crash
        would lose them.  Always False without durability."""
        return self._durable is not None and self._durable.durability_degraded

    def durability_status(self) -> dict:
        """Health-facing snapshot of the durable store's state."""
        store = self._durable
        if store is None:
            return {"durable": False}
        return {
            "durable": True,
            "degraded": store.durability_degraded,
            "degraded_reason": store.degraded_reason,
            "appends_suspended": store.appends_suspended,
            "checkpoints_failed": store.checkpoints_failed,
            "breaker_state": store.breaker.state,
            "entries_journaled": store.next_index,
        }

    def add(self, fields: Mapping[str, str], weight: float = 1.0) -> int:
        """Insert one record; return its id (or -1 when quarantined).

        Cost is proportional to the record's blocking keys and (for
        non-equivalence sufficient predicates) a bounded number of
        pairwise verifications inside its key blocks.  A record whose
        keying or verification raises is quarantined into
        :attr:`dead_letters` before any engine state is touched, so the
        stream and the maintained closure stay intact.

        With durability configured, the insert is appended to the
        write-ahead log *before* any engine state mutates — a crash at
        any point loses at most inserts whose WAL entries did not
        survive, never the applied prefix.
        """
        if self._durable is not None:
            self._durable.append(
                {"op": "add", "fields": dict(fields), "weight": weight}
            )
        return self._apply_add(fields, weight)

    def _apply_add(self, fields: Mapping[str, str], weight: float) -> int:
        """Mutate engine state for one insert (journaling already done)."""
        self._entries_applied += 1
        record = Record(
            record_id=len(self._records), fields=dict(fields), weight=weight
        )
        sufficient = self._levels[0].sufficient
        # Key and verify BEFORE mutating any engine state, so a poison
        # record can be quarantined without rollback.
        try:
            keys = set(sufficient.blocking_keys(record))
        except Exception as exc:
            if not self._quarantine:
                raise
            self._divert(fields, weight, exc, "keying")
            return -1
        unions: list[int] = []
        try:
            for key in keys:
                members = self._key_members.get(key)
                if not members:
                    continue
                if sufficient.key_implies_match:
                    unions.append(members[0])
                    continue
                matched_roots: set[int] = set()
                for other in reversed(members[-self._max_verifications:]):
                    root = self._uf.find(other)
                    if root in matched_roots:
                        continue
                    if sufficient.evaluate(record, self._records[other]):
                        unions.append(other)
                        matched_roots.add(root)
        except Exception as exc:
            if not self._quarantine:
                raise
            self._divert(fields, weight, exc, "evaluate")
            return -1

        self._records.append(record)
        self._uf.add()
        for other in unions:
            self._uf.union(record.record_id, other)
        for key in keys:
            self._key_members[key].append(record.record_id)
        self._version += 1
        return record.record_id

    def _divert(
        self, fields: Mapping[str, str], weight: float, exc: Exception, stage: str
    ) -> None:
        self._dead_letters.append(
            DeadLetter(
                fields=dict(fields), weight=weight, error=repr(exc), stage=stage
            )
        )
        while len(self._dead_letters) > self._dead_letter_limit:
            self._dead_letters.popleft()
            self._dead_letters_dropped += 1
        self._verification.counters.records_quarantined += 1
        metrics = self._verification.metrics
        if metrics.enabled:
            metrics.counter("repro_records_quarantined_total", stage=stage).inc()

    def snapshot_state(self) -> EngineSnapshotState:
        """Freeze the current closure for snapshot-isolated readers.

        Must be called by the stream's single writer (never concurrently
        with :meth:`add`): the records tuple and the component member
        lists are copied here, so the returned snapshot is immune to
        every later insert — the query service publishes these through
        an atomic generation pointer and long-running readers never
        observe a torn in-flight add.
        """
        by_root: dict[int, list[int]] = defaultdict(list)
        for record_id in range(len(self._records)):
            by_root[self._uf.find(record_id)].append(record_id)
        components = tuple(
            tuple(members)
            for members in sorted(by_root.values(), key=lambda m: m[0])
        )
        # The columnar container freezes into an immutable view sharing
        # the mapped base — copying one tuple of tail references, not
        # the corpus; the in-memory list is copied wholesale as before.
        freeze = getattr(self._records, "freeze", None)
        return EngineSnapshotState(
            records=freeze() if freeze is not None else tuple(self._records),
            components=components,
            generation=self._version,
            entries_applied=self._entries_applied,
            dead_letters=len(self._dead_letters),
        )

    def add_store(self, store: RecordStore) -> None:
        """Bulk-insert every record of *store* (ids are reassigned)."""
        for record in store:
            self.add(record.fields, record.weight)

    def current_store(self) -> RecordStore:
        """Snapshot of all accumulated records."""
        return RecordStore(list(self._records))

    def collapsed_groups(self) -> GroupSet:
        """The maintained level-1 sufficient closure as a GroupSet."""
        store = self.current_store()
        by_root: dict[int, list[int]] = defaultdict(list)
        for record_id in range(len(self._records)):
            by_root[self._uf.find(record_id)].append(record_id)
        groups = []
        for members in by_root.values():
            singletons = [
                Group.singleton(0, self._records[m]) for m in members
            ]
            groups.append(merge_groups(store, singletons))
        return GroupSet(store=store, groups=groups)

    def query(
        self,
        k: int,
        prune_iterations: int = 2,
        policy: ExecutionPolicy | None = None,
        workers: int | None = None,
        kind: str = "count",
        r: int = 8,
        min_probability: float = 0.0,
    ):
        """Answer the Top-K query on the current stream state.

        With ``kind="count"`` (the default) returns the pruning result
        (:class:`~repro.core.pruned_dedup.PrunedDedupResult`), exactly
        as before.  With ``kind="interval"`` the engine must have been
        constructed with a ``scorer``; the query then enumerates the *r*
        highest-scoring dedup worlds over the pruned state and returns
        an :class:`~repro.uncertainty.IntervalQueryResult` with
        per-entity count intervals and top-K membership probabilities
        (entities below *min_probability* membership mass are pruned).

        Results are cached per ``(kind, k, policy, workers[, r,
        min_probability])`` until the next insert.  With a *policy*, the
        query degrades anytime exactly like the batch engine: on
        deadline/budget exhaustion it returns the best answer derivable
        from the current collapsed state, flagged ``degraded``.
        *workers* > 1 shards the level pipeline
        (:mod:`repro.core.parallel`) with bit-identical results; ``None``
        consults ``REPRO_WORKERS``.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if kind not in ("count", "interval"):
            raise ValueError(f"kind must be 'count' or 'interval', got {kind!r}")
        if kind == "interval" and self._scorer is None:
            raise ValueError(
                "interval queries need a pairwise scorer: construct the "
                "engine with scorer=..."
            )
        n_workers = resolve_workers(workers)
        if kind == "interval":
            cache_key: tuple = (
                "interval", k, policy, n_workers, r, min_probability
            )
        else:
            cache_key = (k, policy, n_workers)
        cached = self._query_cache.get(cache_key)
        if cached is not None and cached[0] == self._version:
            return cached[1]

        d = len(self._records)
        context = self._verification
        span_kind = "stream" if kind == "count" else "stream_interval"
        with context.span("query", kind=span_kind, k=k):
            before_run = context.counters.snapshot()
            # Interval queries arm the policy up front so pruning and
            # world scoring share one deadline (as in the batch engine);
            # count queries keep arming it inside the level pipeline.
            state = (
                policy.start(context.counters)
                if policy is not None and kind == "interval"
                else None
            )
            with context.span("collapse"):
                with context.stage("collapse"):
                    groups = self.collapsed_groups()
            pruning = run_level_pipeline(
                groups,
                k,
                self._levels,
                context=context,
                prune_iterations=prune_iterations,
                policy=policy if state is None else None,
                execution_state=state,
                skip_first_collapse=True,
                n_starting_records=d,
                before_run=before_run,
                workers=n_workers,
            )
            if kind == "interval":
                from ..uncertainty.query import interval_from_pruning

                result = interval_from_pruning(
                    pruning,
                    k,
                    self._scorer,
                    self._levels[-1].necessary,
                    r=r,
                    min_probability=min_probability,
                    context=context,
                    state=state,
                )
            else:
                result = pruning
        metrics = context.metrics
        if metrics.enabled:
            if kind == "interval":
                from ..uncertainty.query import publish_interval_metrics

                publish_interval_metrics(context, result, None)
                context.publish_pipeline_metrics(pruning.counters)
            else:
                metrics.counter("repro_queries_total", kind="stream").inc()
                if result.degraded:
                    metrics.counter(
                        "repro_degraded_queries_total",
                        reason=result.degraded_reason,
                    ).inc()
                context.publish_pipeline_metrics(result.counters)
        self._query_cache[cache_key] = (self._version, result)
        return result

    # -- durability ----------------------------------------------------

    def checkpoint(self, *, prune: bool = True) -> Path:
        """Snapshot the full stream state into the state directory.

        The snapshot (record store, union-find closure, per-group
        weights, dead letters) is written atomically; WAL segments and
        checkpoints subsumed by the retention policy are pruned unless
        *prune* is False (crash harnesses keep the full history so any
        write moment stays reconstructible).

        With the columnar store, the bulk state is **compacted** into a
        ``columnar-<entries>.col`` array sidecar written before the
        (now small) checkpoint file that references it, and the live
        container swaps its base to the freshly mapped generation —
        releasing the resident tail.  A crash between the two writes
        leaves an orphan sidecar that the next prune removes.

        Returns the checkpoint's path.  Requires durability.
        """
        if self._durable is None:
            raise PersistenceError(
                "checkpoint() requires durability: construct the engine "
                "with a state directory (durability=...)"
            )
        parent, size, n_components = self._uf.state()
        header = {
            "engine_version": self._version,
            "entries_applied": self._entries_applied,
            "n_records": len(self._records),
        }
        dead_letters_section = {
            "letters": [
                {
                    "fields": dict(letter.fields),
                    "weight": letter.weight,
                    "error": letter.error,
                    "stage": letter.stage,
                }
                for letter in self._dead_letters
            ],
            "dropped": self._dead_letters_dropped,
            "limit": self._dead_letter_limit,
        }
        if self._store_kind == "columnar":
            from ..storage import engine_state as col_state

            arrays, meta, _has_postings = col_state.build_sidecar_arrays(
                self._records, parent, size, n_components, self._key_members
            )
            meta["engine_version"] = self._version
            meta["entries_applied"] = self._entries_applied
            sidecar = col_state.write_sidecar(
                self._durable.directory, self._entries_applied, arrays, meta
            )
            sections: dict[str, object] = {
                "columnar": {
                    "file": sidecar.name,
                    "n_records": len(self._records),
                },
                "dead_letters": dead_letters_section,
            }
            path = self._durable.write_checkpoint(header, sections)
            generation = col_state.open_sidecar(sidecar)
            self._records.swap_base(generation.records)
        else:
            group_weights: dict[int, float] = defaultdict(float)
            for record in self._records:
                group_weights[self._uf.find(record.record_id)] += record.weight
            sections = {
                "records": [
                    {"fields": dict(r.fields), "weight": r.weight}
                    for r in self._records
                ],
                "union_find": {
                    "parent": parent,
                    "size": size,
                    "n_components": n_components,
                },
                "groups": sorted(group_weights.items()),
                "dead_letters": dead_letters_section,
            }
            path = self._durable.write_checkpoint(header, sections)
        if prune:
            self._durable.prune()
        return path

    @classmethod
    def restore(
        cls,
        state_dir: str | Path | DurabilityPolicy,
        levels: list[PredicateLevel],
        *,
        max_block_verifications: int = 64,
        verdict_cache_limit: int = 2_000_000,
        quarantine: bool = True,
        dead_letter_limit: int = 1000,
        store: str = "memory",
        scorer=None,
        tracer=None,
        metrics=None,
    ) -> "IncrementalTopK":
        """Rebuild an engine from a state directory after a crash.

        Loads the newest checkpoint that validates (corrupt newer ones
        fall back to older), rebuilds the blocking-key index from the
        record store, replays the surviving WAL tail, absorbs a torn or
        corrupt *trailing* entry (the signature of a crash mid-append)
        and raises :class:`~repro.core.persistence.WalCorruptionError`
        on mid-log damage.  The recovered state must pass
        :meth:`audit` before it is accepted; what recovery did is
        recorded in :attr:`last_recovery`.  The returned engine keeps
        journaling into the same directory.

        A ``store="columnar"`` engine restoring from a compacted
        (format-2) checkpoint maps the ``columnar-<entries>.col``
        sidecar: records stay on disk and materialise lazily, the
        closure is validated with array kernels, and the blocking-key
        index is loaded from persisted postings instead of re-keying
        every record — no per-record Python work before the WAL tail
        replays.  Either store kind restores either checkpoint format
        (a memory engine materialises a columnar checkpoint; a columnar
        engine accepts an inline-JSON one and compacts at its next
        checkpoint), with bit-identical answers throughout.

        *levels* must be the same predicate suite the stream was built
        with (predicates are code and are not serialized); recovery
        equality additionally assumes the suite is deterministic.
        """
        policy = as_policy(state_dir)
        durable = DurableStateStore(policy)
        if not durable.has_state():
            raise PersistenceError(
                f"{policy.path} holds no stream state to restore"
            )
        engine = cls(
            levels,
            max_block_verifications=max_block_verifications,
            verdict_cache_limit=verdict_cache_limit,
            quarantine=quarantine,
            dead_letter_limit=dead_letter_limit,
            durability=None,
            store=store,
            scorer=scorer,
            tracer=tracer,
            metrics=metrics,
        )
        loaded = durable.load_latest_checkpoint()
        checkpoint_path: Path | None = None
        checkpoint_entries = 0
        corrupt_skipped = 0
        if loaded is not None:
            header, sections, checkpoint_path, corrupt_skipped = loaded
            engine._install_checkpoint(
                header, sections, directory=durable.directory
            )
            checkpoint_entries = engine._entries_applied
        log = durable.recover_log()
        if log.segments and log.first_index > checkpoint_entries:
            raise WalCorruptionError(
                f"WAL starts at entry {log.first_index} but the newest "
                f"valid checkpoint covers only {checkpoint_entries} — "
                f"intervening segments are missing"
            )
        replayed = 0
        for index, payload in log.entries():
            if index < checkpoint_entries:
                continue
            if index != engine._entries_applied:
                raise WalCorruptionError(
                    f"WAL entry index {index} does not follow applied "
                    f"count {engine._entries_applied}"
                )
            if payload.get("op") != "add" or "fields" not in payload:
                raise WalCorruptionError(
                    f"WAL entry {index} has unknown shape: "
                    f"{sorted(payload)!r}"
                )
            engine._apply_add(payload["fields"], payload.get("weight", 1.0))
            replayed += 1
        problems = engine.audit(strict=False)
        if problems:
            raise StateAuditError(
                "recovered state failed audit: " + "; ".join(problems)
            )
        durable.resume_appends(log, engine._entries_applied)
        durable.set_metrics(engine._verification.metrics)
        engine._durable = durable
        engine.last_recovery = RecoveryInfo(
            checkpoint_path=checkpoint_path,
            checkpoint_entries=checkpoint_entries,
            entries_replayed=replayed,
            torn_tail_bytes=log.torn_tail_bytes,
            corrupt_checkpoints_skipped=corrupt_skipped,
        )
        return engine

    def _install_checkpoint(
        self, header: dict, sections: dict[str, object], *, directory=None
    ) -> None:
        """Load a validated checkpoint's sections into this (empty) engine.

        Dispatches on the checkpoint's shape, not the engine's store
        kind: a ``columnar`` reference section installs by mapping the
        array sidecar, inline JSON sections install the v1 way.  Either
        engine kind accepts either shape — the store kind only decides
        whether the installed records live in a hybrid mapped container
        or a plain list.
        """
        if "columnar" in sections:
            self._install_columnar_checkpoint(header, sections, directory)
        else:
            self._install_json_checkpoint(header, sections)

    def _install_columnar_checkpoint(
        self, header: dict, sections: dict[str, object], directory
    ) -> None:
        """Map a format-2 checkpoint's array sidecar and adopt it.

        The sidecar's closure is validated with array kernels (same
        invariants as the scalar path, bit for bit), and when the
        blocking-key index was persisted it loads from postings with
        zero predicate calls; otherwise it is re-derived exactly like a
        v1 restore.
        """
        from ..storage import engine_state as col_state
        from ..storage.columnar import HybridRecordList
        from ..storage.layout import ArrayFileError
        from .persistence import CheckpointError

        if directory is None:
            raise CheckpointError(
                "a columnar checkpoint needs its state directory to "
                "resolve the array sidecar"
            )
        try:
            ref = sections["columnar"]
            dead = sections["dead_letters"]
            name = ref["file"]
            n_declared = int(ref["n_records"])
            self._dead_letters = deque(
                DeadLetter(
                    fields=dict(entry["fields"]),
                    weight=entry["weight"],
                    error=entry["error"],
                    stage=entry["stage"],
                )
                for entry in dead["letters"]
            )
            self._dead_letters_dropped = int(dead["dropped"])
            self._version = int(header["engine_version"])
            self._entries_applied = int(header["entries_applied"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint sections are malformed: {exc!r}"
            ) from exc
        try:
            columns = col_state.open_sidecar(Path(directory) / name)
            columns.validate()
        except (ArrayFileError, OSError) as exc:
            raise CheckpointError(
                f"columnar sidecar {name} is unusable: {exc}"
            ) from exc
        if columns.records.n != n_declared or n_declared != int(
            header.get("n_records", n_declared)
        ):
            raise CheckpointError(
                f"checkpoint declares {n_declared} records but the sidecar "
                f"holds {columns.records.n}"
            )
        self._uf = UnionFind.from_state(
            columns.uf_parent.tolist(),
            columns.uf_size.tolist(),
            columns.n_components,
        )
        if self._store_kind == "columnar":
            self._records = HybridRecordList(columns.records)
        else:
            self._records = [
                columns.records.record(i) for i in range(columns.records.n)
            ]
        key_members = columns.key_members()
        if key_members is not None:
            self._key_members = key_members
        else:
            self._rebuild_key_index()

    def _rebuild_key_index(self) -> None:
        """Re-derive the blocking-key index from the record store.

        Re-keys in id order so the per-key member lists match the
        original insertion order exactly.
        """
        sufficient = self._levels[0].sufficient
        self._key_members = defaultdict(list)
        for record in self._records:
            try:
                keys = set(sufficient.blocking_keys(record))
            except Exception as exc:
                raise StateAuditError(
                    f"blocking-key rebuild failed for record "
                    f"{record.record_id}: {exc!r} (stored records keyed "
                    f"successfully when inserted — is the predicate suite "
                    f"deterministic and unchanged?)"
                ) from exc
            for key in keys:
                self._key_members[key].append(record.record_id)

    def _install_json_checkpoint(
        self, header: dict, sections: dict[str, object]
    ) -> None:
        """Install inline (v1-style) JSON sections."""
        from .persistence import CheckpointError

        try:
            records = sections["records"]
            uf_state = sections["union_find"]
            groups = sections["groups"]
            dead = sections["dead_letters"]
            self._records = [
                Record(
                    record_id=i,
                    fields=dict(entry["fields"]),
                    weight=entry["weight"],
                )
                for i, entry in enumerate(records)
            ]
            self._uf = UnionFind.from_state(
                uf_state["parent"], uf_state["size"], uf_state["n_components"]
            )
            self._dead_letters = deque(
                DeadLetter(
                    fields=dict(entry["fields"]),
                    weight=entry["weight"],
                    error=entry["error"],
                    stage=entry["stage"],
                )
                for entry in dead["letters"]
            )
            self._dead_letters_dropped = int(dead["dropped"])
            self._version = int(header["engine_version"])
            self._entries_applied = int(header["entries_applied"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint sections are malformed: {exc!r}"
            ) from exc
        if len(self._records) != int(header.get("n_records", len(self._records))):
            raise CheckpointError(
                f"checkpoint header declares {header.get('n_records')} "
                f"records but the records section holds {len(self._records)}"
            )
        if len(self._uf) != len(self._records):
            raise CheckpointError(
                f"union-find covers {len(self._uf)} elements but the store "
                f"holds {len(self._records)} records"
            )
        # Cross-check the persisted per-group weights against the
        # record store before trusting the closure at all.
        parent, _size, _n = self._uf.state()
        recomputed: dict[int, float] = defaultdict(float)
        for record in self._records:
            recomputed[_walk_root(parent, record.record_id)] += record.weight
        persisted = {int(root): weight for root, weight in groups}
        if set(persisted) != set(recomputed) or any(
            not math.isclose(persisted[root], recomputed[root], rel_tol=1e-9)
            for root in persisted
        ):
            raise StateAuditError(
                "checkpointed group weights do not sum to member weights"
            )
        if self._store_kind == "columnar":
            # A columnar engine restoring a v1 checkpoint keeps its
            # hybrid container (all records in the tail); the next
            # checkpoint compacts them into a mapped generation.
            from ..storage.columnar import HybridRecordList

            hybrid = HybridRecordList()
            for record in self._records:
                hybrid.append(record)
            self._records = hybrid
        # The v1 format deliberately does not persist the blocking-key
        # index; it is re-derived from the records.
        self._rebuild_key_index()

    def _audit_closure_fast(self, parent, record_weights, n):
        """Vectorised closure walk: ``(root → count, root → weight)``.

        Only applicable when the record store exposes its weights as an
        array (hybrid/columnar containers) and the union-find covers the
        store exactly.  Returns ``None`` when inapplicable or when the
        parent array is malformed — the scalar walk then re-discovers
        the damage one record at a time with precise messages.
        """
        if record_weights is None or len(parent) != n or n == 0:
            return None
        from ..storage.engine_state import resolve_roots
        from ..storage.layout import ArrayFileError

        try:
            resolved = resolve_roots(np.asarray(parent, dtype=np.int64))
        except (ArrayFileError, ValueError):
            return None
        counts = np.bincount(resolved, minlength=n)
        sums = np.bincount(resolved, weights=record_weights, minlength=n)
        root_ids = np.nonzero(counts)[0]
        roots = {
            int(root): int(counts[root]) for root in root_ids.tolist()
        }
        weights = {
            int(root): float(sums[root]) for root in root_ids.tolist()
        }
        return roots, weights

    def _audit_closure_scalar(self, parent, record_weights, n, problems):
        """The original record-at-a-time closure walk (precise messages)."""
        roots: dict[int, int] = defaultdict(int)  # root -> member count
        weights: dict[int, float] = defaultdict(float)
        for record_id in range(min(n, len(parent))):
            node = record_id
            steps = 0
            while True:
                if not 0 <= node < len(parent):
                    problems.append(
                        f"parent chain from record {record_id} leaves the "
                        f"valid range at {node}"
                    )
                    node = None
                    break
                if parent[node] == node:
                    break
                node = parent[node]
                steps += 1
                if steps > len(parent):
                    problems.append(
                        f"parent chain from record {record_id} cycles"
                    )
                    node = None
                    break
            if node is None:
                continue
            roots[node] += 1
            if record_weights is not None:
                weights[node] += float(record_weights[record_id])
            else:
                weights[node] += self._records[record_id].weight
        return roots, weights

    def audit(self, strict: bool = True) -> list[str]:
        """Self-check the closure invariants of the live state.

        Verifies that every record is covered by the union-find (and
        every parent chain terminates acyclically in range), that
        component sizes and the component count are consistent, that
        group weights sum to member weights with finite values, that
        the blocking-key index references valid record ids in insertion
        order, and that the dead-letter bound holds.

        Returns the list of problems found (empty when healthy).  With
        ``strict`` (the default) a non-empty list raises
        :class:`~repro.core.persistence.StateAuditError` instead.
        """
        problems: list[str] = []
        parent, size, n_components = self._uf.state()
        n = len(self._records)
        if len(parent) != n:
            problems.append(
                f"union-find covers {len(parent)} elements but the store "
                f"holds {n} records"
            )
        weights_array = getattr(self._records, "weights_array", None)
        record_weights = weights_array() if weights_array is not None else None
        fast = self._audit_closure_fast(parent, record_weights, n)
        if fast is not None:
            roots, weights = fast
        else:
            roots, weights = self._audit_closure_scalar(
                parent, record_weights, n, problems
            )
        if len(parent) == n:
            if n_components != len(roots):
                problems.append(
                    f"n_components says {n_components} but {len(roots)} "
                    f"roots are reachable"
                )
            for root, members in roots.items():
                if root < len(size) and size[root] != members:
                    problems.append(
                        f"component at root {root} has {members} members "
                        f"but size[{root}] == {size[root]}"
                    )
        for root, weight in weights.items():
            if not math.isfinite(weight):
                problems.append(f"group at root {root} has non-finite weight")
        total_group = sum(weights.values())
        if record_weights is not None:
            total_records = float(np.sum(record_weights))
        else:
            total_records = sum(r.weight for r in self._records)
        if not math.isclose(total_group, total_records, rel_tol=1e-9, abs_tol=1e-9):
            problems.append(
                f"group weights sum to {total_group} but record weights "
                f"sum to {total_records}"
            )
        for key, members in self._key_members.items():
            if any(not 0 <= m < n for m in members):
                problems.append(
                    f"key index entry {key!r} references an invalid record id"
                )
            elif any(a >= b for a, b in zip(members, members[1:])):
                problems.append(
                    f"key index entry {key!r} is not in insertion order"
                )
        if len(self._dead_letters) > self._dead_letter_limit:
            problems.append(
                f"dead-letter list holds {len(self._dead_letters)} entries, "
                f"over the limit of {self._dead_letter_limit}"
            )
        if strict and problems:
            raise StateAuditError(
                "state audit failed: " + "; ".join(problems)
            )
        return problems

    def close(self) -> None:
        """Release the WAL file handle (no-op without durability).

        Idempotent: closing twice — or closing after a storage fault
        already wedged the segment handle — is always safe.  A server
        draining through an error path must be able to call this
        unconditionally.
        """
        if self._durable is not None:
            self._durable.close()
