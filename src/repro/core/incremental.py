"""Incremental Top-K over evolving sources.

The paper's opening motivation: "sources that are constantly evolving,
or are otherwise too vast or open-ended to be amenable to offline
deduplication".  :class:`IncrementalTopK` keeps the expensive part of
the pipeline — the sufficient-predicate closure of the *first* level —
up to date as records stream in: each arriving record is unioned with
existing groups through the predicate's blocking keys, so a query only
pays for bound-estimation, pruning and the later levels on the *current
collapsed state*, never re-tokenizing history.

Queries are answered through the same machinery as the batch engine
(:func:`repro.core.pruned_dedup.run_level_pipeline`), so results match
a from-scratch :func:`repro.core.pruned_dedup.pruned_dedup` run on the
accumulated records (verified by the test suite) — including execution
policies: a query armed with an
:class:`~repro.core.resilience.ExecutionPolicy` degrades anytime instead
of hanging.

Streams are hardened against poison records: an insert whose keying or
pairwise verification raises is **quarantined** into an inspectable
dead-letter list (:attr:`IncrementalTopK.dead_letters`) instead of
stopping the stream or corrupting the maintained closure.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Hashable, Mapping
from dataclasses import dataclass

from ..graphs.union_find import UnionFind
from ..predicates.base import PredicateLevel
from .pruned_dedup import PrunedDedupResult, run_level_pipeline
from .records import Group, GroupSet, Record, RecordStore, merge_groups
from .resilience import ExecutionPolicy
from .verification import VerificationContext


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined stream record.

    Attributes:
        fields: The record's raw fields, as submitted.
        weight: The record's weight, as submitted.
        error: ``repr`` of the exception that poisoned the insert.
        stage: Where the insert failed: ``"keying"`` (the sufficient
            predicate's ``blocking_keys`` raised) or ``"evaluate"``
            (pairwise verification against an existing record raised).
    """

    fields: Mapping[str, str]
    weight: float
    error: str
    stage: str


class IncrementalTopK:
    """Maintain Top-K count query state over an insert-only record stream.

    Args:
        levels: Predicate levels, cheapest first (as for PrunedDedup).
            The first level's sufficient predicate is maintained
            incrementally; later levels run at query time on the
            collapsed state.
        max_block_verifications: Per arriving record, cap on how many
            same-key records are verified pairwise for non-equivalence
            sufficient predicates (newest first) — bounds per-insert
            cost on pathological keys.
        verdict_cache_limit: Cap on cached necessary-predicate pair
            verdicts per predicate.  Records are immutable and ids are
            stable, so verdicts stay valid across inserts and queries;
            past this size the oldest verdicts are evicted (bounded
            FIFO) to bound memory on long streams without dropping
            verdicts the query in flight still needs.
        quarantine: Divert records whose keying/verification raises into
            :attr:`dead_letters` (the default — one poison record cannot
            stop the stream).  With False, such exceptions propagate to
            the ``add`` caller.
    """

    def __init__(
        self,
        levels: list[PredicateLevel],
        max_block_verifications: int = 64,
        verdict_cache_limit: int = 2_000_000,
        quarantine: bool = True,
    ):
        if not levels:
            raise ValueError("need at least one predicate level")
        self._levels = levels
        self._max_verifications = max_block_verifications
        self._quarantine = quarantine
        self._records: list[Record] = []
        self._uf = UnionFind(0)
        self._key_members: dict[Hashable, list[int]] = defaultdict(list)
        self._version = 0
        self._query_cache: dict[
            tuple[int, ExecutionPolicy | None], tuple[int, PrunedDedupResult]
        ] = {}
        self._dead_letters: list[DeadLetter] = []
        self._verification = VerificationContext(
            verdict_cache_limit=verdict_cache_limit
        )

    @property
    def verification(self) -> VerificationContext:
        """The stream-lifetime verification context (counters included)."""
        return self._verification

    @property
    def dead_letters(self) -> list[DeadLetter]:
        """Quarantined records, in arrival order (inspect and replay)."""
        return list(self._dead_letters)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def version(self) -> int:
        """Monotone counter bumped on every insert."""
        return self._version

    def add(self, fields: Mapping[str, str], weight: float = 1.0) -> int:
        """Insert one record; return its id (or -1 when quarantined).

        Cost is proportional to the record's blocking keys and (for
        non-equivalence sufficient predicates) a bounded number of
        pairwise verifications inside its key blocks.  A record whose
        keying or verification raises is quarantined into
        :attr:`dead_letters` before any engine state is touched, so the
        stream and the maintained closure stay intact.
        """
        record = Record(
            record_id=len(self._records), fields=dict(fields), weight=weight
        )
        sufficient = self._levels[0].sufficient
        # Key and verify BEFORE mutating any engine state, so a poison
        # record can be quarantined without rollback.
        try:
            keys = set(sufficient.blocking_keys(record))
        except Exception as exc:
            if not self._quarantine:
                raise
            self._divert(fields, weight, exc, "keying")
            return -1
        unions: list[int] = []
        try:
            for key in keys:
                members = self._key_members.get(key)
                if not members:
                    continue
                if sufficient.key_implies_match:
                    unions.append(members[0])
                    continue
                matched_roots: set[int] = set()
                for other in reversed(members[-self._max_verifications:]):
                    root = self._uf.find(other)
                    if root in matched_roots:
                        continue
                    if sufficient.evaluate(record, self._records[other]):
                        unions.append(other)
                        matched_roots.add(root)
        except Exception as exc:
            if not self._quarantine:
                raise
            self._divert(fields, weight, exc, "evaluate")
            return -1

        self._records.append(record)
        self._uf.add()
        for other in unions:
            self._uf.union(record.record_id, other)
        for key in keys:
            self._key_members[key].append(record.record_id)
        self._version += 1
        return record.record_id

    def _divert(
        self, fields: Mapping[str, str], weight: float, exc: Exception, stage: str
    ) -> None:
        self._dead_letters.append(
            DeadLetter(
                fields=dict(fields), weight=weight, error=repr(exc), stage=stage
            )
        )
        self._verification.counters.records_quarantined += 1

    def add_store(self, store: RecordStore) -> None:
        """Bulk-insert every record of *store* (ids are reassigned)."""
        for record in store:
            self.add(record.fields, record.weight)

    def current_store(self) -> RecordStore:
        """Snapshot of all accumulated records."""
        return RecordStore(list(self._records))

    def collapsed_groups(self) -> GroupSet:
        """The maintained level-1 sufficient closure as a GroupSet."""
        store = self.current_store()
        by_root: dict[int, list[int]] = defaultdict(list)
        for record_id in range(len(self._records)):
            by_root[self._uf.find(record_id)].append(record_id)
        groups = []
        for members in by_root.values():
            singletons = [
                Group.singleton(0, self._records[m]) for m in members
            ]
            groups.append(merge_groups(store, singletons))
        return GroupSet(store=store, groups=groups)

    def query(
        self,
        k: int,
        prune_iterations: int = 2,
        policy: ExecutionPolicy | None = None,
    ) -> PrunedDedupResult:
        """Answer the Top-K pruning query on the current stream state.

        Results are cached per ``(k, policy)`` until the next insert.
        With a *policy*, the query degrades anytime exactly like the
        batch engine: on deadline/budget exhaustion it returns the best
        answer derivable from the current collapsed state, flagged
        ``degraded``.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        cache_key = (k, policy)
        cached = self._query_cache.get(cache_key)
        if cached is not None and cached[0] == self._version:
            return cached[1]

        d = len(self._records)
        context = self._verification
        before_run = context.counters.snapshot()
        with context.stage("collapse"):
            groups = self.collapsed_groups()
        result = run_level_pipeline(
            groups,
            k,
            self._levels,
            context=context,
            prune_iterations=prune_iterations,
            policy=policy,
            skip_first_collapse=True,
            n_starting_records=d,
            before_run=before_run,
        )
        self._query_cache[cache_key] = (self._version, result)
        return result
