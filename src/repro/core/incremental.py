"""Incremental Top-K over evolving sources.

The paper's opening motivation: "sources that are constantly evolving,
or are otherwise too vast or open-ended to be amenable to offline
deduplication".  :class:`IncrementalTopK` keeps the expensive part of
the pipeline — the sufficient-predicate closure of the *first* level —
up to date as records stream in: each arriving record is unioned with
existing groups through the predicate's blocking keys, so a query only
pays for bound-estimation, pruning and the later levels on the *current
collapsed state*, never re-tokenizing history.

Queries are answered through the same machinery as the batch engine, so
results match a from-scratch :func:`repro.core.pruned_dedup.pruned_dedup`
run on the accumulated records (verified by the test suite).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Hashable, Mapping

from ..graphs.union_find import UnionFind
from ..predicates.base import PredicateLevel
from .collapse import collapse
from .lower_bound import estimate_lower_bound
from .prune import prune
from .pruned_dedup import LevelStats, PrunedDedupResult
from .records import Group, GroupSet, Record, RecordStore, merge_groups
from .verification import VerificationContext


class IncrementalTopK:
    """Maintain Top-K count query state over an insert-only record stream.

    Args:
        levels: Predicate levels, cheapest first (as for PrunedDedup).
            The first level's sufficient predicate is maintained
            incrementally; later levels run at query time on the
            collapsed state.
        max_block_verifications: Per arriving record, cap on how many
            same-key records are verified pairwise for non-equivalence
            sufficient predicates (newest first) — bounds per-insert
            cost on pathological keys.
        verdict_cache_limit: Cap on cached necessary-predicate pair
            verdicts per predicate.  Records are immutable and ids are
            stable, so verdicts stay valid across inserts and queries;
            the cache is flushed wholesale past this size to bound
            memory on long streams.
    """

    def __init__(
        self,
        levels: list[PredicateLevel],
        max_block_verifications: int = 64,
        verdict_cache_limit: int = 2_000_000,
    ):
        if not levels:
            raise ValueError("need at least one predicate level")
        self._levels = levels
        self._max_verifications = max_block_verifications
        self._records: list[Record] = []
        self._uf = UnionFind(0)
        self._key_members: dict[Hashable, list[int]] = defaultdict(list)
        self._version = 0
        self._query_cache: dict[int, tuple[int, PrunedDedupResult]] = {}
        self._verification = VerificationContext(
            verdict_cache_limit=verdict_cache_limit
        )

    @property
    def verification(self) -> VerificationContext:
        """The stream-lifetime verification context (counters included)."""
        return self._verification

    def __len__(self) -> int:
        return len(self._records)

    @property
    def version(self) -> int:
        """Monotone counter bumped on every insert."""
        return self._version

    def add(self, fields: Mapping[str, str], weight: float = 1.0) -> int:
        """Insert one record; return its id.

        Cost is proportional to the record's blocking keys and (for
        non-equivalence sufficient predicates) a bounded number of
        pairwise verifications inside its key blocks.
        """
        record = Record(
            record_id=len(self._records), fields=dict(fields), weight=weight
        )
        self._records.append(record)
        self._uf.add()
        sufficient = self._levels[0].sufficient
        for key in set(sufficient.blocking_keys(record)):
            members = self._key_members[key]
            if members:
                if sufficient.key_implies_match:
                    self._uf.union(record.record_id, members[0])
                else:
                    for other in reversed(members[-self._max_verifications:]):
                        if self._uf.connected(record.record_id, other):
                            continue
                        if sufficient.evaluate(record, self._records[other]):
                            self._uf.union(record.record_id, other)
            members.append(record.record_id)
        self._version += 1
        return record.record_id

    def add_store(self, store: RecordStore) -> None:
        """Bulk-insert every record of *store* (ids are reassigned)."""
        for record in store:
            self.add(record.fields, record.weight)

    def current_store(self) -> RecordStore:
        """Snapshot of all accumulated records."""
        return RecordStore(list(self._records))

    def collapsed_groups(self) -> GroupSet:
        """The maintained level-1 sufficient closure as a GroupSet."""
        store = self.current_store()
        by_root: dict[int, list[int]] = defaultdict(list)
        for record_id in range(len(self._records)):
            by_root[self._uf.find(record_id)].append(record_id)
        groups = []
        for members in by_root.values():
            singletons = [
                Group.singleton(0, self._records[m]) for m in members
            ]
            groups.append(merge_groups(store, singletons))
        return GroupSet(store=store, groups=groups)

    def query(self, k: int, prune_iterations: int = 2) -> PrunedDedupResult:
        """Answer the Top-K pruning query on the current stream state.

        Results are cached per *k* until the next insert.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        cached = self._query_cache.get(k)
        if cached is not None and cached[0] == self._version:
            return cached[1]

        d = len(self._records)
        context = self._verification
        before_run = context.counters.snapshot()
        with context.stage("collapse"):
            groups = self.collapsed_groups()
        result = PrunedDedupResult(groups=groups, n_starting_records=d)
        current = result.groups
        for index, level in enumerate(self._levels):
            before_level = context.counters.snapshot()
            if index > 0:
                with context.stage("collapse"):
                    current = collapse(current, level.sufficient)
            n_after_collapse = len(current)
            with context.stage("lower_bound"):
                estimate = estimate_lower_bound(
                    current, level.necessary, k, context=context
                )
            with context.stage("prune"):
                pruned = prune(
                    current,
                    level.necessary,
                    estimate.bound,
                    iterations=prune_iterations,
                    context=context,
                )
            current = pruned.retained
            result.stats.append(
                LevelStats(
                    level_name=level.name,
                    n_groups_after_collapse=n_after_collapse,
                    n_pct=100.0 * n_after_collapse / d if d else 0.0,
                    m=estimate.m,
                    bound=estimate.bound,
                    n_groups_after_prune=len(current),
                    n_prime_pct=100.0 * len(current) / d if d else 0.0,
                    certified=estimate.certified,
                    counters=context.counters.delta(before_level),
                )
            )
            # Same early-out as the batch engine: the group count can
            # only shrink from here, so <= k groups ends the query.
            if len(current) <= k:
                result.terminated_early = True
                result.terminated_below_k = len(current) < k
                break
        result.groups = current
        result.counters = context.counters.delta(before_run)
        self._query_cache[k] = (self._version, result)
        return result
