"""Shared verification layer: one NeighborIndex + verdict cache per level.

Algorithm 2's per-level cost is dominated by necessary-predicate
verification, and historically the lower-bound estimator and the prune
stage each built their *own* :class:`~repro.predicates.blocking.NeighborIndex`
over the same group representatives and re-verified the same candidate
pairs.  :class:`VerificationContext` removes that duplication:

* the index is constructed once per ``(predicate, representatives)``
  pair and handed to every stage of the level that asks for it;
* pair verdicts are shared: expensive strategies (plain ``evaluate``,
  signatures) memoize them in a cache keyed by the two endpoints'
  *record ids* (stable for the lifetime of a store), so a pair verified
  by the lower-bound walk is free for the prune stage, for later prune
  iterations, and for later levels whose groups were untouched by
  collapse — a collapse that merges a group elects a new representative,
  which retires the old pair keys without any explicit invalidation
  (records are immutable, so a cached verdict can never go stale).  The
  cheap count-filtering strategy shares verdicts by symmetric membership
  in already-probed neighbor sets instead (see
  :meth:`~repro.predicates.blocking.NeighborIndex.neighbors`) — its
  per-pair decision is cheaper than per-pair dict traffic would be;
* every verification strategy is instrumented with cheap counters
  (:class:`PipelineCounters`) so the pipeline's work is measurable per
  level and per stage.

The context is deliberately dumb about *what* it verifies: correctness
is unchanged because verdicts are pure functions of two immutable
records, and the cache only engages for predicates declaring themselves
:attr:`~repro.predicates.base.Predicate.symmetric` (the pipeline's
neighbor graphs already assume symmetry throughout).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from itertools import islice
from typing import Iterator

from ..observability import NULL_METRICS, NULL_TRACER, SIZE_BUCKETS
from ..predicates.base import Predicate
from ..predicates.blocking import NeighborIndex
from .records import GroupSet


@dataclass
class PipelineCounters:
    """Cheap work counters for the verification layer.

    Attributes:
        predicate_evaluations: Necessary-predicate verdicts computed via
            ``evaluate`` or the count-filtering fast path (one per
            candidate pair decided).
        signature_evaluations: Verdicts computed via the
            ``evaluate_signatures`` fast path.
        cache_hits: Pair verdicts answered by sharing — from the
            record-id verdict cache (evaluate/signature strategies) or
            by neighbor-set membership (count-filtering strategy).
        cache_misses: Pair verdicts computed and inserted into the
            record-id verdict cache (count-mode evaluations do not
            insert, so they never count as misses).
        index_builds: ``NeighborIndex`` constructions (posting-list
            builds over all representatives).
        index_reuses: Stages that received an already-built index.
        neighbor_queries: ``NeighborIndex.neighbors`` calls.
        neighbor_memo_hits: Neighbor queries answered from the
            per-index memo without touching the postings.
        predicate_errors_contained: Predicate ``evaluate`` exceptions
            replaced with a role-safe fallback verdict by a
            :class:`~repro.core.resilience.GuardedPredicate`.
        keying_errors_contained: Predicate ``blocking_keys`` exceptions
            contained (the record contributed no keys).
        predicate_timeouts_contained: Predicate calls exceeding the
            policy's per-call timeout whose verdict was replaced with
            the role-safe fallback.
        scorer_errors_contained: Scorer exceptions or per-call timeouts
            replaced with the neutral score.
        records_quarantined: Stream records diverted to an
            :class:`~repro.core.incremental.IncrementalTopK` dead-letter
            list instead of being inserted.
        shards_degraded: Parallel shards whose worker process died and
            whose work was recomputed serially in the parent (see
            :mod:`repro.core.parallel`).
        stage_seconds: Wall-clock seconds per pipeline stage name
            (cumulative across levels).
    """

    predicate_evaluations: int = 0
    signature_evaluations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    index_builds: int = 0
    index_reuses: int = 0
    neighbor_queries: int = 0
    neighbor_memo_hits: int = 0
    predicate_errors_contained: int = 0
    keying_errors_contained: int = 0
    predicate_timeouts_contained: int = 0
    scorer_errors_contained: int = 0
    records_quarantined: int = 0
    shards_degraded: int = 0
    stage_seconds: dict[str, float] = field(default_factory=dict)

    _INT_FIELDS = (
        "predicate_evaluations",
        "signature_evaluations",
        "cache_hits",
        "cache_misses",
        "index_builds",
        "index_reuses",
        "neighbor_queries",
        "neighbor_memo_hits",
        "predicate_errors_contained",
        "keying_errors_contained",
        "predicate_timeouts_contained",
        "scorer_errors_contained",
        "records_quarantined",
        "shards_degraded",
    )

    @property
    def total_evaluations(self) -> int:
        """All predicate verdicts actually computed (not cache-served)."""
        return self.predicate_evaluations + self.signature_evaluations

    @property
    def total_contained(self) -> int:
        """All containment events (errors, timeouts, quarantines)."""
        return (
            self.predicate_errors_contained
            + self.keying_errors_contained
            + self.predicate_timeouts_contained
            + self.scorer_errors_contained
            + self.records_quarantined
        )

    def add_stage_time(self, stage: str, seconds: float) -> None:
        """Accumulate *seconds* of wall time under *stage*."""
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def snapshot(self) -> "PipelineCounters":
        """Return an independent copy of the current counter values."""
        copy = PipelineCounters(
            **{name: getattr(self, name) for name in self._INT_FIELDS}
        )
        copy.stage_seconds = dict(self.stage_seconds)
        return copy

    def delta(self, since: "PipelineCounters") -> "PipelineCounters":
        """Return the work done since the *since* snapshot."""
        diff = PipelineCounters(
            **{
                name: getattr(self, name) - getattr(since, name)
                for name in self._INT_FIELDS
            }
        )
        diff.stage_seconds = {
            stage: seconds - since.stage_seconds.get(stage, 0.0)
            for stage, seconds in self.stage_seconds.items()
            if seconds - since.stage_seconds.get(stage, 0.0) > 0.0
        }
        return diff

    def merge(self, other: "PipelineCounters") -> None:
        """Fold *other*'s counts into this instance (in place).

        The parallel execution layer gives each worker shard an
        independent counter delta and merges them back in a fixed shard
        order, so a parallel run reports the same totals a serial run
        would (modulo the sharing hits that only one process can see).
        """
        for name in self._INT_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for stage, seconds in other.stage_seconds.items():
            self.add_stage_time(stage, seconds)

    def as_dict(self) -> dict[str, object]:
        """Flat dict form for reports and the CLI ``--stats`` output."""
        out: dict[str, object] = {
            name: getattr(self, name) for name in self._INT_FIELDS
        }
        out["stage_seconds"] = dict(self.stage_seconds)
        return out


class VerificationContext:
    """Per-pipeline state shared by every stage that verifies pairs.

    One context is created per pipeline run (``pruned_dedup``, a rank
    query, or the lifetime of an :class:`~repro.core.incremental.IncrementalTopK`)
    and handed to :func:`~repro.core.lower_bound.estimate_lower_bound`
    and :func:`~repro.core.prune.prune`.  Stages ask it for a
    :class:`~repro.predicates.blocking.NeighborIndex` via
    :meth:`neighbor_index`; the index is built once per
    ``(predicate, representatives)`` pair and reused while the level's
    group set is unchanged.

    Args:
        counters: Counter sink; a fresh one is created when omitted.
        verdict_cache_limit: Per-predicate cap on cached pair verdicts.
            When exceeded, the *oldest* entries are evicted (bounded
            FIFO) down to the limit at the next index build — never a
            wholesale flush, which could drop verdicts the level
            currently executing still needs (long-running incremental
            streams set this to bound memory).
        caching: Disable to make every :meth:`neighbor_index` call build
            a bare, uncached index — the pre-sharing pipeline behaviour,
            kept for baseline measurements and ablations.
        tracer: Span sink (:class:`repro.observability.Tracer`); the
            zero-overhead :data:`~repro.observability.NULL_TRACER` when
            omitted.  Pipelines open spans through :meth:`span` /
            :meth:`record_span` / :meth:`event` so call sites never
            branch on whether tracing is enabled.
        metrics: Metric sink (:class:`repro.observability.MetricsRegistry`);
            the no-op :data:`~repro.observability.NULL_METRICS` when
            omitted.  When enabled, neighbor indexes built by this
            context sample predicate latency and candidate-set sizes
            into it.
    """

    def __init__(
        self,
        counters: PipelineCounters | None = None,
        verdict_cache_limit: int | None = None,
        caching: bool = True,
        tracer=None,
        metrics=None,
    ):
        self.counters = counters if counters is not None else PipelineCounters()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._verdicts: dict[int, dict[tuple[int, int], bool]] = {}
        self._verdict_limit = verdict_cache_limit
        self._caching = caching
        self._index_key: tuple[int, tuple[int, ...]] | None = None
        self._index: NeighborIndex | None = None
        self._stage_depth: dict[str, int] = {}
        self._latency_observe = None
        self._candidate_observe = None
        if self.metrics.enabled:
            self.metrics.describe(
                "repro_predicate_latency_seconds",
                "Sampled necessary-predicate pair verification latency",
            )
            self.metrics.describe(
                "repro_candidate_set_size",
                "Verified neighbor-list sizes per NeighborIndex probe",
            )
            self._latency_observe = self.metrics.histogram(
                "repro_predicate_latency_seconds"
            ).observe
            self._candidate_observe = self.metrics.histogram(
                "repro_candidate_set_size", buckets=SIZE_BUCKETS
            ).observe

    def neighbor_index(
        self, predicate: Predicate, group_set: GroupSet
    ) -> NeighborIndex:
        """Return the (possibly cached) index over *group_set*'s reps.

        Two consecutive calls with the same predicate and an unchanged
        representative list — exactly the lower-bound/prune pairing of
        one level — share a single index build, its neighbor memo, and
        its verdict cache.
        """
        if not self._caching:
            return NeighborIndex(
                predicate,
                group_set.representatives(),
                counters=self.counters,
                latency_observe=self._latency_observe,
                candidate_observe=self._candidate_observe,
            )
        key = (
            id(predicate),
            tuple(group.representative_id for group in group_set),
        )
        if self._index is not None and self._index_key == key:
            self.counters.index_reuses += 1
            return self._index

        verdicts = None
        if getattr(predicate, "symmetric", True):
            verdicts = self._verdicts.setdefault(id(predicate), {})
            if (
                self._verdict_limit is not None
                and len(verdicts) > self._verdict_limit
            ):
                # Bounded FIFO: dicts preserve insertion order, so the
                # leading keys are the oldest verdicts — evict those and
                # keep the recent ones, which are the verdicts the level
                # in flight is most likely to re-ask for.  (A wholesale
                # clear() here used to drop mid-query state.)
                excess = len(verdicts) - self._verdict_limit
                for oldest in list(islice(iter(verdicts), excess)):
                    del verdicts[oldest]
        index = NeighborIndex(
            predicate,
            group_set.representatives(),
            counters=self.counters,
            verdicts=verdicts,
            memoize=True,
            latency_observe=self._latency_observe,
            candidate_observe=self._candidate_observe,
        )
        self._index_key = key
        self._index = index
        return index

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a pipeline stage into :attr:`PipelineCounters.stage_seconds`.

        Re-entrant under the same name: only the *outermost* frame of a
        nested same-name stage records its elapsed time, so a stage that
        re-enters itself (a prune pass priming neighbors under its own
        stage, a recovery path re-running a stage) contributes its wall
        time exactly once instead of once per nesting depth.
        """
        self._stage_depth[name] = self._stage_depth.get(name, 0) + 1
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            depth = self._stage_depth[name] - 1
            if depth:
                self._stage_depth[name] = depth
            else:
                del self._stage_depth[name]
                self.counters.add_stage_time(name, elapsed)

    def span(
        self,
        name: str,
        transient: bool = False,
        counters: PipelineCounters | None = None,
        **attributes: object,
    ):
        """Open a tracer span measured against this context's counters.

        A no-op (shared null context manager) under the default
        :class:`~repro.observability.NullTracer`.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return tracer.span(name)
        return tracer.span(
            name,
            counters=counters if counters is not None else self.counters,
            transient=transient,
            **attributes,
        )

    def record_span(
        self,
        name: str,
        counters_delta: PipelineCounters | None = None,
        transient: bool = False,
        **attributes: object,
    ):
        """Attach an already-completed span (e.g. a worker shard's)."""
        return self.tracer.record_span(
            name,
            counters_delta=counters_delta,
            transient=transient,
            **attributes,
        )

    def event(self, name: str, **attributes: object) -> None:
        """Record a point-in-time event under the current span."""
        self.tracer.event(name, **attributes)

    def publish_pipeline_metrics(self, delta: PipelineCounters) -> None:
        """Publish a run's counter delta into the metrics registry.

        Every non-zero integer field becomes a
        ``repro_pipeline_<field>_total`` counter increment and every
        stage's wall time feeds ``repro_stage_seconds_total{stage=}``,
        so successive queries against one context accumulate into one
        scrape-able registry.  No-op under :data:`NULL_METRICS`.
        """
        metrics = self.metrics
        if not metrics.enabled:
            return
        for name in PipelineCounters._INT_FIELDS:
            value = getattr(delta, name)
            if value:
                metrics.counter(f"repro_pipeline_{name}_total").inc(value)
        for stage, seconds in delta.stage_seconds.items():
            metrics.counter("repro_stage_seconds_total", stage=stage).inc(seconds)

    def cached_verdicts(self, predicate: Predicate) -> int:
        """Number of pair verdicts currently cached for *predicate*."""
        return len(self._verdicts.get(id(predicate), ()))
