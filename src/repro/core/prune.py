"""Prune stage (Section 4.3): drop groups that cannot reach the answer.

For each group ``c_i`` an upper bound ``u_i`` on the weight of the
largest answer group it could belong to is computed; groups with
``u_i <= M`` are pruned.  The first pass bounds ``u_i`` by the group's own
weight plus the weights of all its N-neighbors; subsequent passes tighten
it by only counting neighbors whose own bound still exceeds M — the
paper's "two pass iterative version of this recursive definition"
(Section 6.2 reports the second pass roughly doubles pruning and a third
adds little; ``iterations`` exposes that ablation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..predicates.base import Predicate
from ..predicates.batch import vectorize_enabled
from ..predicates.blocking import NeighborIndex
from .records import GroupSet

if TYPE_CHECKING:
    from .verification import VerificationContext


@dataclass
class PruneResult:
    """Outcome of the prune stage.

    Attributes:
        retained: The surviving groups (renumbered, weight-ordered).
        kept_group_ids: Original group ids of the survivors.
        upper_bounds: Final ``u_i`` per original group id (``inf`` for
            groups at or above weight M, which are never at risk).
    """

    retained: GroupSet
    kept_group_ids: list[int]
    upper_bounds: list[float]


def prune(
    group_set: GroupSet,
    necessary: Predicate,
    bound: float,
    iterations: int = 2,
    compute_all_bounds: bool = False,
    context: "VerificationContext | None" = None,
) -> PruneResult:
    """Prune groups whose upper bound cannot exceed *bound* (= M).

    With ``bound <= 0`` nothing can be pruned and the input is returned
    unchanged (this happens when the lower-bound estimator could not
    certify K distinct groups).

    With *compute_all_bounds*, real upper bounds are computed even for
    groups already at weight >= M (they can never be pruned, so the count
    query skips them, but the Section 7 rank queries need every u_i).

    With a :class:`~repro.core.verification.VerificationContext`, the
    neighbor index built by the preceding lower-bound estimation over
    the same group set is reused instead of rebuilt, and pair verdicts
    it already computed are served from the shared cache.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    n = len(group_set)
    if n == 0 or (bound <= 0.0 and not compute_all_bounds):
        return PruneResult(
            retained=group_set,
            kept_group_ids=list(range(n)),
            upper_bounds=[math.inf] * n,
        )

    weights = group_set.weights()
    representatives = group_set.representatives()
    if context is not None:
        index = context.neighbor_index(necessary, group_set)
    else:
        index = NeighborIndex(necessary, representatives)

    # Groups already at weight >= M can never be pruned; their bound is
    # effectively infinite.  Neighbor lists are materialized only for the
    # at-risk groups (weight < M), keeping memory proportional to them —
    # unless the caller asked for every bound.
    if compute_all_bounds:
        at_risk = list(range(n))
    else:
        at_risk = [i for i in range(n) if weights[i] < bound]
    neighbor_lists = dict(zip(at_risk, index.neighbors_batch(at_risk)))

    if vectorize_enabled():
        upper = _iterate_bounds_numpy(
            n, weights, at_risk, neighbor_lists, bound, iterations
        )
    else:
        upper = _iterate_bounds_python(
            n, weights, at_risk, neighbor_lists, bound, iterations
        )

    kept = [i for i in range(n) if upper[i] > bound or weights[i] >= bound]
    return PruneResult(
        retained=group_set.subset(kept),
        kept_group_ids=kept,
        upper_bounds=upper,
    )


def _iterate_bounds_python(
    n: int,
    weights: list[float],
    at_risk: list[int],
    neighbor_lists: dict[int, list[int]],
    bound: float,
    iterations: int,
) -> list[float]:
    """Reference scalar bound iteration (``REPRO_VECTORIZE=0``)."""
    upper = [math.inf] * n
    for i in at_risk:
        upper[i] = weights[i] + sum(weights[j] for j in neighbor_lists[i])

    def live(j: int) -> bool:
        return upper[j] > bound or weights[j] >= bound

    for _ in range(iterations - 1):
        changed = False
        new_upper = list(upper)
        for i in at_risk:
            if weights[i] >= bound:
                continue  # already safe; tightening is pointless
            tightened = weights[i] + sum(
                weights[j] for j in neighbor_lists[i] if live(j)
            )
            if tightened < new_upper[i]:
                new_upper[i] = tightened
                changed = True
        upper = new_upper
        if not changed:
            break
    return upper


def _iterate_bounds_numpy(
    n: int,
    weights: list[float],
    at_risk: list[int],
    neighbor_lists: dict[int, list[int]],
    bound: float,
    iterations: int,
) -> list[float]:
    """Vectorized bound iteration, bit-identical to the scalar one.

    Neighbor lists are flattened once into a CSR-style (segments, flat)
    pair; each pass is then one weighted ``np.bincount``.  bincount
    accumulates in input order, so every per-group float sum adds the
    same weights in the same left-to-right order as the Python loop —
    including the refinement passes, where dead neighbors are *filtered
    out* of the flat array (preserving the survivors' relative order)
    rather than zeroed, exactly mirroring the scalar ``if live(j)``
    skip.
    """
    w = np.asarray(weights, dtype=np.float64)
    risk = np.asarray(at_risk, dtype=np.int64)
    upper = np.full(n, np.inf)
    if len(risk) == 0:
        return upper.tolist()
    lengths = np.fromiter(
        (len(neighbor_lists[i]) for i in at_risk),
        dtype=np.int64,
        count=len(at_risk),
    )
    flat = np.fromiter(
        (j for i in at_risk for j in neighbor_lists[i]),
        dtype=np.int64,
        count=int(lengths.sum()),
    )
    segments = np.repeat(np.arange(len(risk), dtype=np.int64), lengths)
    upper[risk] = w[risk] + np.bincount(
        segments, weights=w[flat], minlength=len(risk)
    )
    # Scalar refinement skips groups already at weight >= bound.
    refinable = w[risk] < bound
    for _ in range(iterations - 1):
        live = (upper > bound) | (w >= bound)
        keep = live[flat]
        tightened = w[risk] + np.bincount(
            segments[keep], weights=w[flat[keep]], minlength=len(risk)
        )
        update = refinable & (tightened < upper[risk])
        if not update.any():
            break
        upper[risk[update]] = tightened[update]
    return upper.tolist()
