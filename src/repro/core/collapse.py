"""Collapse stage (Section 4.1): merge sure duplicates early.

Groups are the transitive closure of pairs satisfying the sufficient
predicate S, computed over the current group *representatives* — Section
4.1 proves the choice of representative cannot change later predicate
outcomes, so collapsing is safe at any stage of the pipeline.
"""

from __future__ import annotations

from collections import defaultdict

from ..predicates.base import Predicate
from ..predicates.blocking import closure
from .records import Group, GroupSet, RecordStore, merge_groups


def collapse(group_set: GroupSet, sufficient: Predicate) -> GroupSet:
    """Merge groups connected by the transitive closure of *sufficient*.

    Evaluates S on group representatives only; merged groups pool their
    members and weights and elect a new representative
    (see :func:`repro.core.records.merge_groups`).
    """
    representatives = group_set.representatives()
    uf = closure(sufficient, representatives)

    by_root: dict[int, list[Group]] = defaultdict(list)
    for position, group in enumerate(group_set):
        by_root[uf.find(position)].append(group)

    merged = [
        merge_groups(group_set.store, members) for members in by_root.values()
    ]
    return GroupSet(store=group_set.store, groups=merged)


def collapse_records(store: RecordStore, sufficient: Predicate) -> GroupSet:
    """Collapse raw records directly (singleton groups then S-closure)."""
    return collapse(GroupSet.singletons(store), sufficient)
