"""Full-deduplication baselines — Figure 6's comparators.

Three pipelines that dedup *everything* and only then pick the K largest
groups, with increasing amounts of standard machinery:

* ``none``: Cartesian pair enumeration -> P -> cluster (the unoptimized
  reference; quadratic, only run on subsets);
* ``canopy``: pairs restricted to a canopy (the necessary predicate) ->
  P -> cluster — the classic [26] recipe;
* ``canopy+collapse``: sufficient-predicate collapse first, then the
  canopy pipeline on the collapsed representatives.

None of them can exploit K; that is exactly the point of the comparison
with :func:`repro.core.pruned_dedup.pruned_dedup`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.collapse import collapse, collapse_records
from ..core.records import Group, GroupSet, RecordStore, merge_groups
from ..graphs.union_find import UnionFind
from ..predicates.base import Predicate, PredicateLevel
from ..predicates.blocking import candidate_pairs
from ..scoring.pairwise import PairwiseScorer


@dataclass
class DedupOutcome:
    """Result of a full-dedup pipeline.

    Attributes:
        topk: The K heaviest groups found.
        n_pairs_scored: How many record pairs the final P evaluated —
            the dominant cost the paper's Figure 6 measures in time.
        n_groups: Total groups formed over the whole dataset.
        groups: The full clustered group set (all groups, weight-sorted),
            when the pipeline kept it — the differential oracle compares
            group weights and memberships beyond the K-th.  None for the
            older pipelines that only retain the Top-K.
    """

    topk: GroupSet
    n_pairs_scored: int
    n_groups: int
    groups: GroupSet | None = None


def _cluster_positive_pairs(
    group_set: GroupSet,
    pairs: list[tuple[int, int]],
    scorer: PairwiseScorer,
) -> tuple[GroupSet, int]:
    """Score *pairs* of group positions; merge positives transitively."""
    representatives = group_set.representatives()
    uf = UnionFind(len(group_set))
    n_scored = 0
    for i, j in pairs:
        n_scored += 1
        if scorer.score(representatives[i], representatives[j]) > 0:
            uf.union(i, j)
    merged = [
        merge_groups(group_set.store, [group_set[i] for i in component])
        for component in uf.components()
    ]
    return GroupSet(store=group_set.store, groups=merged), n_scored


def _topk(group_set: GroupSet, k: int) -> GroupSet:
    return group_set.subset(list(range(min(k, len(group_set)))))


def none_pipeline(store: RecordStore, k: int, scorer: PairwiseScorer) -> DedupOutcome:
    """Cartesian product -> P -> transitive clustering -> K largest."""
    group_set = GroupSet.singletons(store)
    n = len(group_set)
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    clustered, n_scored = _cluster_positive_pairs(group_set, pairs, scorer)
    return DedupOutcome(
        topk=_topk(clustered, k), n_pairs_scored=n_scored, n_groups=len(clustered)
    )


def canopy_pipeline(
    store: RecordStore,
    k: int,
    scorer: PairwiseScorer,
    necessary: Predicate,
) -> DedupOutcome:
    """Canopy (necessary predicate) pairs -> P -> clustering -> K largest."""
    group_set = GroupSet.singletons(store)
    representatives = group_set.representatives()
    pairs = list(candidate_pairs(necessary, representatives, verify=True))
    clustered, n_scored = _cluster_positive_pairs(group_set, pairs, scorer)
    return DedupOutcome(
        topk=_topk(clustered, k), n_pairs_scored=n_scored, n_groups=len(clustered)
    )


def full_dedup_pipeline(
    store: RecordStore,
    k: int,
    levels: list[PredicateLevel],
    scorer: PairwiseScorer | None = None,
) -> DedupOutcome:
    """Exhaustive multi-level dedup — the differential oracle's ground truth.

    Runs every predicate level's sufficient closure in sequence (each
    collapse operates on the previous level's representatives, exactly
    like the pruned pipeline's collapse stages), then — when *scorer* is
    given — applies the final pairwise criterion P to the last level's
    necessary-canopy candidate pairs and merges positives transitively.
    No bound estimation, no pruning, no K-awareness anywhere: every
    group survives to the end, so the result is the answer the
    K-exploiting pipeline must reproduce.

    Without a *scorer* the outcome's groups are the plain multi-level
    sufficient closure — the ground truth for rank and thresholded rank
    queries, which never invoke P.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not levels:
        raise ValueError("need at least one predicate level")
    clustered = GroupSet.singletons(store)
    for level in levels:
        clustered = collapse(clustered, level.sufficient)
    n_scored = 0
    if scorer is not None:
        representatives = clustered.representatives()
        pairs = list(
            candidate_pairs(levels[-1].necessary, representatives, verify=True)
        )
        clustered, n_scored = _cluster_positive_pairs(clustered, pairs, scorer)
    return DedupOutcome(
        topk=_topk(clustered, k),
        n_pairs_scored=n_scored,
        n_groups=len(clustered),
        groups=clustered,
    )


def canopy_collapse_pipeline(
    store: RecordStore,
    k: int,
    scorer: PairwiseScorer,
    necessary: Predicate,
    sufficient: Predicate,
) -> DedupOutcome:
    """Sufficient-collapse, then the canopy pipeline on representatives."""
    collapsed = collapse_records(store, sufficient)
    representatives = collapsed.representatives()
    pairs = list(candidate_pairs(necessary, representatives, verify=True))
    clustered, n_scored = _cluster_positive_pairs(collapsed, pairs, scorer)
    return DedupOutcome(
        topk=_topk(clustered, k), n_pairs_scored=n_scored, n_groups=len(clustered)
    )
