"""Brute-force possible-worlds oracle for interval answer semantics.

Exhaustively enumerates **every** valid Top-K segmentation of an
embedded record line (2^(n-1) cut patterns — refuse beyond a small n),
scores each world through :func:`partition_score` (an independent code
path from the segmentation DP's score table), assigns exact Gibbs
masses, and computes the exact per-position count distribution, count
envelope, and top-K membership mass.

This is the ground truth the differential suites hold
:mod:`repro.uncertainty` against: the engine's enumerated world set at
full R must coincide with the oracle's, its intervals must contain every
oracle count, and its membership probabilities must converge to the
oracle's exact mass as R reaches the full world count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..clustering.correlation import ScoreMatrix, partition_score
from ..embedding.greedy import LinearEmbedding

__all__ = [
    "MAX_ORACLE_N",
    "OracleWorld",
    "OracleEntity",
    "OracleAnswer",
    "enumerate_all_segmentations",
    "possible_worlds_answer",
]

MAX_ORACLE_N = 12


@dataclass(frozen=True)
class OracleWorld:
    """One exhaustively-enumerated world: a full partition of the base
    positions with its strict top-K prefix and Eq. 1 score."""

    clusters: tuple[tuple[int, ...], ...]
    weights: tuple[float, ...]
    n_top: int
    score: float
    mass: float


@dataclass(frozen=True)
class OracleEntity:
    """Exact per-position ground truth.

    ``distribution`` maps each achievable cluster weight of the position
    to its total world mass (sorted by weight).
    """

    position: int
    count_lo: float
    count_hi: float
    expected_count: float
    membership_probability: float
    distribution: tuple[tuple[float, float], ...]


@dataclass(frozen=True)
class OracleAnswer:
    """Exact possible-worlds semantics of a Top-K query."""

    worlds: tuple[OracleWorld, ...]
    entities: tuple[OracleEntity, ...]
    temperature: float
    map_counts: tuple[float, ...]

    @property
    def n_worlds(self) -> int:
        return len(self.worlds)

    def world_keys(self) -> set[tuple]:
        """Canonical identity of every world, for set comparison with
        the engine's enumeration."""
        return {(world.clusters, world.n_top) for world in self.worlds}

    def entity(self, position: int) -> OracleEntity:
        return self.entities[position]


def enumerate_all_segmentations(
    n: int, breaks: set[int], max_span: int
) -> list[tuple[tuple[int, int], ...]]:
    """Every segmentation of embedded slots ``0..n-1`` as (start, end)
    runs, honouring the DP's segment rule: a segment may not contain a
    break at any index other than its own start, and may not exceed
    *max_span* slots."""
    if n > MAX_ORACLE_N:
        raise ValueError(
            f"exhaustive enumeration limited to n <= {MAX_ORACLE_N}, got {n}"
        )
    segmentations: list[tuple[tuple[int, int], ...]] = []
    for mask in range(1 << max(n - 1, 0)):
        cuts = [0]
        cuts.extend(i for i in range(1, n) if mask & (1 << (i - 1)))
        cuts.append(n)
        segments = []
        valid = True
        for start, stop in zip(cuts, cuts[1:]):
            end = stop - 1
            if end - start + 1 > max_span:
                valid = False
                break
            if any(i in breaks for i in range(start + 1, end + 1)):
                valid = False
                break
            segments.append((start, end))
        if valid:
            segmentations.append(tuple(segments))
    return segmentations


def _strict_top_k(weights: Sequence[float], k: int) -> float | None:
    """Return the strict top-K boundary (the weight every top cluster
    must exceed), or None when the segmentation does not support an
    unambiguous Top-K answer — mirroring the DP's ``weight > l``
    threshold semantics."""
    if len(weights) < k:
        return None
    ordered = sorted(weights, reverse=True)
    boundary = ordered[k] if len(weights) > k else 0.0
    if ordered[k - 1] <= boundary:
        return None
    return boundary


def possible_worlds_answer(
    scores: ScoreMatrix,
    embedding: LinearEmbedding,
    weights: Sequence[float],
    k: int,
    *,
    max_span: int = 30,
    temperature: float | None = None,
) -> OracleAnswer:
    """Exact interval/membership semantics by exhaustive enumeration.

    Takes the same ``(scores, embedding, weights, k, max_span)`` world
    model as the engine (see :func:`repro.uncertainty.world_model`) so
    both sides quantify over the identical world space, but scores each
    world via :func:`partition_score` — a code path that shares nothing
    with the DP's prefix-sum score table.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n = len(weights)
    if scores.n != n:
        raise ValueError(f"{n} weights for a {scores.n}-record score matrix")

    raw_worlds: list[tuple[tuple[tuple[int, ...], ...], tuple[float, ...], int, float]] = []
    for segments in enumerate_all_segmentations(n, embedding.breaks, max_span):
        clusters = []
        for start, end in segments:
            members = tuple(
                sorted(embedding.order[i] for i in range(start, end + 1))
            )
            clusters.append((members, sum(weights[m] for m in members)))
        boundary = _strict_top_k([w for _, w in clusters], k)
        if boundary is None:
            continue
        clusters.sort(key=lambda entry: (-entry[1], entry[0]))
        world_clusters = tuple(members for members, _ in clusters)
        world_weights = tuple(weight for _, weight in clusters)
        score = partition_score([list(c) for c in world_clusters], scores)
        raw_worlds.append((world_clusters, world_weights, k, score))

    raw_worlds.sort(key=lambda world: (-world[3], world[0]))
    world_scores = [score for _, _, _, score in raw_worlds]
    if temperature is None:
        spread = (max(world_scores) - min(world_scores)) if world_scores else 0.0
        temperature = max(spread / 4.0, 1.0)

    masses: list[float] = []
    if world_scores:
        shift = max(world_scores)
        unnormalized = [
            math.exp((score - shift) / temperature) for score in world_scores
        ]
        total = sum(unnormalized)
        masses = [value / total for value in unnormalized]

    worlds = tuple(
        OracleWorld(
            clusters=clusters,
            weights=cluster_weights,
            n_top=n_top,
            score=score,
            mass=mass,
        )
        for (clusters, cluster_weights, n_top, score), mass in zip(
            raw_worlds, masses
        )
    )

    entities = []
    for position in range(n):
        distribution: dict[float, float] = {}
        membership = 0.0
        expected = 0.0
        lo = float("inf")
        hi = float("-inf")
        for world in worlds:
            for cluster, cluster_weight in zip(world.clusters, world.weights):
                if position in cluster:
                    break
            else:  # pragma: no cover - worlds always cover every position
                raise AssertionError("world does not cover every position")
            distribution[cluster_weight] = (
                distribution.get(cluster_weight, 0.0) + world.mass
            )
            expected += world.mass * cluster_weight
            lo = min(lo, cluster_weight)
            hi = max(hi, cluster_weight)
            member_index = world.clusters.index(cluster)
            if member_index < world.n_top:
                membership += world.mass
        entities.append(
            OracleEntity(
                position=position,
                count_lo=lo,
                count_hi=hi,
                expected_count=expected,
                membership_probability=membership,
                distribution=tuple(sorted(distribution.items())),
            )
        )

    map_counts = tuple(0.0 for _ in range(n))
    if worlds:
        best = worlds[0]  # canonical order: best score first
        counts = [0.0] * n
        for cluster, cluster_weight in zip(best.clusters, best.weights):
            for position in cluster:
                counts[position] = cluster_weight
        map_counts = tuple(counts)

    return OracleAnswer(
        worlds=worlds,
        entities=tuple(entities),
        temperature=temperature,
        map_counts=map_counts,
    )
