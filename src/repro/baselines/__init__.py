"""Full-deduplication baseline pipelines (Figure 6 comparators) and the
brute-force possible-worlds oracle for interval answer semantics."""

from .full_dedup import (
    DedupOutcome,
    canopy_collapse_pipeline,
    canopy_pipeline,
    full_dedup_pipeline,
    none_pipeline,
)
from .possible_worlds import (
    MAX_ORACLE_N,
    OracleAnswer,
    OracleEntity,
    OracleWorld,
    enumerate_all_segmentations,
    possible_worlds_answer,
)

__all__ = [
    "DedupOutcome",
    "MAX_ORACLE_N",
    "OracleAnswer",
    "OracleEntity",
    "OracleWorld",
    "canopy_collapse_pipeline",
    "canopy_pipeline",
    "enumerate_all_segmentations",
    "full_dedup_pipeline",
    "none_pipeline",
    "possible_worlds_answer",
]
