"""Full-deduplication baseline pipelines (Figure 6 comparators)."""

from .full_dedup import (
    DedupOutcome,
    canopy_collapse_pipeline,
    canopy_pipeline,
    full_dedup_pipeline,
    none_pipeline,
)

__all__ = [
    "DedupOutcome",
    "canopy_collapse_pipeline",
    "canopy_pipeline",
    "full_dedup_pipeline",
    "none_pipeline",
]
