"""Graph substrate: union-find, adjacency graphs, triangulation, CPN bounds."""

from .adjacency import Graph
from .clique_partition import (
    IncrementalCliquePartition,
    clique_partition_lower_bound,
    naive_distinct_bound,
)
from .triangulation import is_perfect_elimination_ordering, min_fill_ordering
from .union_find import UnionFind

__all__ = [
    "Graph",
    "IncrementalCliquePartition",
    "UnionFind",
    "clique_partition_lower_bound",
    "is_perfect_elimination_ordering",
    "min_fill_ordering",
    "naive_distinct_bound",
]
