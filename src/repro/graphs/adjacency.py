"""A small undirected graph over dense integer vertices.

The lower-bound estimator (Section 4.2) builds the "N-graph" over the
first ``m`` collapsed groups, where edges connect group pairs whose
necessary predicate holds.  ``m`` is typically close to K, so this graph
stays tiny; a plain adjacency-set representation is the right tool.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


class Graph:
    """Undirected graph on vertices ``0..n-1`` with set adjacency."""

    def __init__(self, n: int = 0):
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self._adj: list[set[int]] = [set() for _ in range(n)]

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int]]) -> "Graph":
        """Build a graph on *n* vertices from an edge iterable."""
        graph = cls(n)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return len(self._adj)

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(a) for a in self._adj) // 2

    def add_vertex(self) -> int:
        """Append a new isolated vertex; return its id."""
        self._adj.append(set())
        return len(self._adj) - 1

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge (u, v).  Self-loops are rejected."""
        if u == v:
            raise ValueError(f"self-loop on vertex {u}")
        n = len(self._adj)
        if not (0 <= u < n and 0 <= v < n):
            raise IndexError(f"edge ({u}, {v}) outside vertex range 0..{n - 1}")
        self._adj[u].add(v)
        self._adj[v].add(u)

    def has_edge(self, u: int, v: int) -> bool:
        """Return True when the edge (u, v) exists."""
        return v in self._adj[u]

    def neighbors(self, u: int) -> set[int]:
        """Return a copy of *u*'s neighbor set."""
        return set(self._adj[u])

    def degree(self, u: int) -> int:
        """Return the degree of *u*."""
        return len(self._adj[u])

    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield each undirected edge once, as (min, max)."""
        for u, adj in enumerate(self._adj):
            for v in adj:
                if u < v:
                    yield (u, v)

    def subgraph(self, vertices: Iterable[int]) -> "Graph":
        """Return the induced subgraph on *vertices* (renumbered densely)."""
        vertex_list = list(vertices)
        remap = {old: new for new, old in enumerate(vertex_list)}
        sub = Graph(len(vertex_list))
        for old_u in vertex_list:
            new_u = remap[old_u]
            for old_v in self._adj[old_u]:
                new_v = remap.get(old_v)
                if new_v is not None and new_u < new_v:
                    sub.add_edge(new_u, new_v)
        return sub

    def remove_incident_edges(self, u: int) -> None:
        """Remove every edge incident to *u*, leaving *u* isolated."""
        for v in self._adj[u]:
            self._adj[v].discard(u)
        self._adj[u].clear()

    def copy(self) -> "Graph":
        """Return an independent copy of the graph."""
        clone = Graph(len(self._adj))
        clone._adj = [set(a) for a in self._adj]
        return clone
