"""Clique-partition-number (CPN) lower bounds — the paper's Algorithm 1.

The estimator in Section 4.2 needs, for the N-graph over collapsed
groups, a *lower bound* on the minimum number of cliques covering all
vertices.  Algorithm 1 triangulates the graph with Min-fill and then
greedily walks the elimination ordering, starting a new clique at every
still-uncovered vertex.

Why this is a valid lower bound: the selected (uncovered-when-reached)
vertices are pairwise non-adjacent in the *filled* graph, hence also in
the original graph (which has fewer edges), i.e. they form an independent
set — and any clique can cover at most one member of an independent set.
For chordal graphs the bound is exact (independence number equals clique
cover number by perfection).

:class:`IncrementalCliquePartition` maintains the bound as vertices arrive
one at a time, which is how the lower-bound estimator consumes it: groups
are added in decreasing-size order until the bound reaches K.
"""

from __future__ import annotations

from collections.abc import Iterable

from .adjacency import Graph
from .triangulation import min_fill_ordering


def clique_partition_lower_bound(graph: Graph) -> tuple[int, list[int]]:
    """Run Algorithm 1: return ``(cpn_bound, selected_vertices)``.

    ``selected_vertices`` is the independent set certifying the bound
    (one vertex per clique the greedy cover opened).
    """
    if graph.n_vertices == 0:
        return 0, []
    ordering, filled = min_fill_ordering(graph)
    covered = [False] * graph.n_vertices
    selected: list[int] = []
    for v in ordering:
        if not covered[v]:
            covered[v] = True
            for u in filled.neighbors(v):
                covered[u] = True
            selected.append(v)
    return len(selected), selected


def naive_distinct_bound(graph: Graph) -> int:
    """The weak baseline bound from Section 4.2.

    Walk vertices in insertion order and count those that do not connect
    to any earlier vertex.  On the paper's Figure-1 example this counts 1
    where the CPN bound certifies 2 — it is the ablation comparator X2.
    """
    count = 0
    for v in range(graph.n_vertices):
        if all(u > v for u in graph.neighbors(v)):
            count += 1
    return count


class IncrementalCliquePartition:
    """Maintain a CPN lower bound while vertices arrive one at a time.

    Between full recomputations we keep a *greedy independent set*: an
    arriving vertex joins the set when it is non-adjacent to every current
    member.  That count is a valid (if sometimes loose) lower bound that
    never decreases.  :meth:`refine` re-runs the full Min-fill bound of
    Algorithm 1 and keeps whichever certificate is larger — the paper's
    "incremental version ... so that with every addition of a new node we
    can reuse work to decide if the CPN of the new graph has exceeded K".
    """

    def __init__(self) -> None:
        self._graph = Graph(0)
        self._independent: set[int] = set()

    @property
    def n_vertices(self) -> int:
        """Number of vertices added so far."""
        return self._graph.n_vertices

    @property
    def graph(self) -> Graph:
        """The graph accumulated so far (live view; do not mutate)."""
        return self._graph

    def add_vertex(self, neighbors: Iterable[int]) -> int:
        """Add the next vertex with edges to *neighbors*; return the bound.

        *neighbors* must be ids of previously-added vertices.
        """
        v = self._graph.add_vertex()
        neighbor_set = set(neighbors)
        for u in neighbor_set:
            self._graph.add_edge(u, v)
        if not neighbor_set & self._independent:
            self._independent.add(v)
        return len(self._independent)

    def bound(self) -> int:
        """Current (cheap) CPN lower bound."""
        return len(self._independent)

    def refine(self) -> int:
        """Recompute via full Algorithm 1; keep the better certificate."""
        cpn, selected = clique_partition_lower_bound(self._graph)
        if cpn > len(self._independent):
            self._independent = set(selected)
        return len(self._independent)
