"""Min-fill triangulation (the first loop of the paper's Algorithm 1).

The Min-fill heuristic [23] repeatedly eliminates the vertex whose
not-yet-eliminated neighbors need the fewest extra edges to become a
clique, adding those *fill* edges as it goes.  The elimination order is a
perfect elimination ordering of the resulting *filled* (triangulated)
graph: every vertex's later neighbors form a clique.
"""

from __future__ import annotations

from .adjacency import Graph


def min_fill_ordering(graph: Graph) -> tuple[list[int], Graph]:
    """Return ``(ordering, filled_graph)`` for *graph* via Min-fill.

    ``ordering`` is the elimination order pi (a permutation of the
    vertices); ``filled_graph`` is *graph* plus all fill edges, and is
    triangulated with pi as a perfect elimination ordering.
    """
    n = graph.n_vertices
    filled = graph.copy()
    # Work adjacency restricted to not-yet-eliminated vertices.
    work = graph.copy()
    remaining: set[int] = set(range(n))
    ordering: list[int] = []

    for _ in range(n):
        best_vertex = -1
        best_cost = -1
        for v in remaining:
            cost = _fill_cost(work, v)
            if best_cost < 0 or cost < best_cost or (cost == best_cost and v < best_vertex):
                best_vertex = v
                best_cost = cost
        v = best_vertex
        neighbors = [u for u in work.neighbors(v) if u in remaining]
        # Connect the neighbors of v into a clique (in both the filled
        # output graph and the working graph).
        for i, u in enumerate(neighbors):
            for w in neighbors[i + 1 :]:
                if not filled.has_edge(u, w):
                    filled.add_edge(u, w)
                if not work.has_edge(u, w):
                    work.add_edge(u, w)
        ordering.append(v)
        remaining.remove(v)
        work.remove_incident_edges(v)
    return ordering, filled


def _fill_cost(work: Graph, v: int) -> int:
    """Number of missing edges among *v*'s neighbors in the working graph."""
    neighbors = list(work.neighbors(v))
    missing = 0
    for i, u in enumerate(neighbors):
        for w in neighbors[i + 1 :]:
            if not work.has_edge(u, w):
                missing += 1
    return missing


def is_perfect_elimination_ordering(graph: Graph, ordering: list[int]) -> bool:
    """Check whether *ordering* is a perfect elimination ordering of *graph*.

    True iff for every vertex v, the neighbors of v occurring later in the
    ordering form a clique.  A graph is chordal iff it admits such an
    ordering.
    """
    position = {v: i for i, v in enumerate(ordering)}
    for v in ordering:
        later = [u for u in graph.neighbors(v) if position[u] > position[v]]
        for i, u in enumerate(later):
            for w in later[i + 1 :]:
                if not graph.has_edge(u, w):
                    return False
    return True
