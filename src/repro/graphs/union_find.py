"""Disjoint-set (union-find) structure with path compression.

Used by the collapse stage (Section 4.1): the transitive closure of pairs
satisfying a sufficient predicate is exactly the set of union-find
components after union-ing every satisfying pair.
"""

from __future__ import annotations

from collections import defaultdict


class UnionFind:
    """Union-find over the integers ``0..n-1``.

    Implements union by size with full path compression, giving effectively
    constant amortized operations.
    """

    def __init__(self, n: int):
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self._parent = list(range(n))
        self._size = [1] * n
        self._n_components = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def n_components(self) -> int:
        """Current number of disjoint components."""
        return self._n_components

    def add(self) -> int:
        """Append a new singleton element; return its id.

        Supports incrementally growing structures (evolving sources).
        """
        new_id = len(self._parent)
        self._parent.append(new_id)
        self._size.append(1)
        self._n_components += 1
        return new_id

    def state(self) -> tuple[list[int], list[int], int]:
        """Snapshot ``(parent, size, n_components)`` for persistence.

        The returned lists are copies; restoring them via
        :meth:`from_state` reproduces the structure exactly (including
        any path compression already applied).
        """
        return list(self._parent), list(self._size), self._n_components

    @classmethod
    def from_state(
        cls, parent: list[int], size: list[int], n_components: int
    ) -> "UnionFind":
        """Rebuild a structure from a :meth:`state` snapshot.

        Only shape is validated here; deep invariants (acyclicity,
        size/component consistency) are the caller's audit's job —
        a checkpoint may legitimately be damaged and must be loadable
        enough to be *checked*.
        """
        if len(parent) != len(size):
            raise ValueError(
                f"parent and size arrays differ in length "
                f"({len(parent)} vs {len(size)})"
            )
        uf = cls(0)
        uf._parent = list(parent)
        uf._size = list(size)
        uf._n_components = n_components
        return uf

    def find(self, x: int) -> int:
        """Return the canonical root of *x*'s component."""
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the components of *a* and *b*; return True if they differed."""
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return False
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        self._n_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """Return True when *a* and *b* are in the same component."""
        return self.find(a) == self.find(b)

    def component_size(self, x: int) -> int:
        """Return the size of *x*'s component."""
        return self._size[self.find(x)]

    def components(self) -> list[list[int]]:
        """Return all components as lists of members, largest first."""
        by_root: dict[int, list[int]] = defaultdict(list)
        for x in range(len(self._parent)):
            by_root[self.find(x)].append(x)
        return sorted(by_root.values(), key=len, reverse=True)
