"""Fixed-width table rendering for experiment outputs.

Every experiment driver returns rows of plain dicts; this module turns
them into the aligned text tables printed by the benchmark harness and
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str = "",
) -> str:
    """Render *rows* as a fixed-width text table.

    Floats are shown with two decimals; column order follows *columns*
    (default: keys of the first row).
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    rendered = [[cell(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(r[i]) for r in rendered))
        for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).rjust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in rendered:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)
