"""X5: segmentation answers vs the exact exponential-time algorithm.

The abstract claims the segmentation method "closely matches the
accuracy of an exact exponential time algorithm".  The exhaustive oracle
(:func:`repro.clustering.exact.exact_topk_answers`) is only feasible on
tiny instances, so this experiment sweeps many small random instances
and reports how often the DP's best answer coincides with the exact best
and how close its supporting score gets.
"""

from __future__ import annotations

import numpy as np

from ..clustering.correlation import ScoreMatrix
from ..clustering.exact import exact_topk_answers
from ..embedding.greedy import greedy_embedding
from ..embedding.segmentation import top_k_answers


def _random_instance(
    n: int, rng: np.random.Generator, cluster_bias: float
) -> ScoreMatrix:
    """A fully-scored instance with planted duplicate structure.

    Items are split into random blocks; within-block pairs get positive-
    leaning scores, cross-block pairs negative-leaning, with noise scaled
    so some pairs are genuinely ambiguous (the regime the R-answers
    machinery exists for).
    """
    labels = rng.integers(0, max(2, n // 2), size=n)
    m = ScoreMatrix(n)
    for i in range(n):
        for j in range(i + 1, n):
            mean = cluster_bias if labels[i] == labels[j] else -cluster_bias
            m.set(i, j, float(rng.normal(mean, 1.0)))
    return m


def run_fidelity_sweep(
    n_instances: int = 40,
    n_items: int = 7,
    k: int = 2,
    r: int = 3,
    cluster_bias: float = 1.5,
    seed: int = 0,
) -> dict[str, object]:
    """Sweep random instances; compare DP answers to the exact oracle."""
    rng = np.random.default_rng(seed)
    top1_matches = 0
    top1_in_exact_top3 = 0
    score_ratios: list[float] = []
    evaluated = 0

    for _ in range(n_instances):
        scores = _random_instance(n_items, rng, cluster_bias)
        weights = [1.0] * n_items
        exact = exact_topk_answers(scores, weights, k=k, r=max(r, 3))
        if not exact:
            continue
        embedding = greedy_embedding(scores)
        dp = top_k_answers(
            scores, embedding, weights, k=k, r=r, max_span=n_items
        )
        if not dp:
            continue
        evaluated += 1
        exact_best_groups, exact_best_score, _ = exact[0]
        if dp[0].groups == exact_best_groups:
            top1_matches += 1
        if dp[0].groups in {groups for groups, _, _ in exact[:3]}:
            top1_in_exact_top3 += 1
        gap = (exact_best_score - dp[0].score) / max(abs(exact_best_score), 1.0)
        score_ratios.append(gap)

    return {
        "instances": evaluated,
        "top1_match_pct": 100.0 * top1_matches / max(evaluated, 1),
        "top1_in_exact_top3_pct": 100.0 * top1_in_exact_top3 / max(evaluated, 1),
        "mean_score_gap_pct": 100.0 * float(np.mean(score_ratios))
        if score_ratios
        else 0.0,
    }


def fidelity_checks(row: dict[str, object]) -> dict[str, bool]:
    """The abstract's claim, quantified: the DP's best answer lands in the
    exact top-3 nearly always and its score stays within a few percent of
    the exact optimum."""
    return {
        "mostly_exact_top1": float(row["top1_match_pct"]) >= 70.0,
        "almost_always_exact_top3": float(row["top1_in_exact_top3_pct"]) >= 90.0,
        "score_close": float(row["mean_score_gap_pct"]) <= 5.0,
    }
