"""X7: robustness of the pipeline to increasing mention noise.

The paper's predicates were designed against real noise levels; this
sweep scales the citation generator's noise mixture and reports, per
level: predicate violation rates (do the roles still hold?), the
collapse/prune effectiveness at a fixed K, and whether the true Top-K
still survives.  Expected shape: sufficiency holds at every level (it is
protected by construction), necessity degrades slowly, and pruning
weakens gracefully rather than collapsing.
"""

from __future__ import annotations

from ..core.pruned_dedup import pruned_dedup
from ..datasets import (
    author_idf,
    author_string_idf,
    generate_citations,
    suggest_min_idf,
)
from ..predicates import citation_levels
from ..predicates.validate import validate_necessary, validate_sufficient


def run_noise_sweep(
    levels: tuple[float, ...] = (0.5, 1.0, 1.5),
    n_records: int = 3000,
    k: int = 10,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Sweep mention-noise levels on the citation pipeline."""
    rows: list[dict[str, object]] = []
    for noise in levels:
        dataset = generate_citations(
            n_records=n_records, seed=seed, noise_level=noise
        )
        idf = author_idf(dataset.store)
        predicate_levels = citation_levels(
            idf,
            suggest_min_idf(idf),
            anchor_idf=author_string_idf(dataset.store),
        )

        sufficient_violation = max(
            validate_sufficient(
                level.sufficient, list(dataset.store), dataset.labels
            ).violation_rate
            for level in predicate_levels
        )
        necessary_violation = max(
            validate_necessary(
                level.necessary, list(dataset.store), dataset.labels
            ).violation_rate
            for level in predicate_levels
        )

        result = pruned_dedup(dataset.store, k, predicate_levels)
        surviving = {
            dataset.labels[record_id]
            for group in result.groups
            for record_id in group.member_ids
        }
        true_topk = [entity for entity, _ in dataset.true_topk(k)]
        rows.append(
            {
                "noise": noise,
                "sufficient_violation_pct": 100.0 * sufficient_violation,
                "necessary_violation_pct": 100.0 * necessary_violation,
                "collapse_pct": result.stats[0].n_pct,
                "retained_pct": result.stats[-1].n_prime_pct,
                "topk_recall": sum(e in surviving for e in true_topk)
                / len(true_topk),
            }
        )
    return rows


def robustness_checks(rows: list[dict[str, object]]) -> dict[str, bool]:
    """Graceful-degradation claims for the noise sweep."""
    ordered = sorted(rows, key=lambda r: float(r["noise"]))
    return {
        "sufficiency_always_holds": all(
            float(r["sufficient_violation_pct"]) == 0.0 for r in ordered
        ),
        "necessity_mostly_holds": all(
            float(r["necessary_violation_pct"]) < 5.0 for r in ordered
        ),
        "topk_survives_at_paper_noise": all(
            float(r["topk_recall"]) >= 0.9
            for r in ordered
            if float(r["noise"]) <= 1.0
        ),
        "pruning_still_useful_when_noisy": float(
            ordered[-1]["retained_pct"]
        )
        < 60.0,
    }
