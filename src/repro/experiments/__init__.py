"""Experiment drivers regenerating every table and figure of the paper.

One module per artifact family:

* :mod:`~repro.experiments.pruning_tables` — Figures 2-4;
* :mod:`~repro.experiments.timing` — Figure 6;
* :mod:`~repro.experiments.accuracy` — Figure 7 and Table 1;
* :mod:`~repro.experiments.ablations` — the DESIGN.md X1-X4 ablations;
* :mod:`~repro.experiments.durability` — the X9 WAL-overhead and
  crash-recovery measurements;
* :mod:`~repro.experiments.parallel_scaling` — the X10 parallel-speedup
  and bit-identity sweep;
* :mod:`~repro.experiments.harness` — shared dataset/predicate/scorer setup;
* :mod:`~repro.experiments.report` — plain-text table rendering.
"""

from .ablations import (
    cpn_vs_naive_checks,
    prune_iteration_checks,
    rank_query_checks,
    run_cpn_vs_naive,
    run_cpn_vs_naive_constructed,
    run_prune_iterations_ablation,
    run_rank_query_ablation,
    run_segmentation_vs_hierarchy,
    segmentation_vs_hierarchy_checks,
)
from .accuracy import (
    accuracy_shape_checks,
    figure7_cases,
    run_accuracy_case,
    run_figure7,
    table1,
)
from .chaos import chaos_checks, run_chaos_sweep
from .durability import (
    durability_checks,
    run_durability_overhead,
    run_recovery_cost,
)
from .fault_overhead import (
    fault_plane_overhead_checks,
    run_fault_plane_overhead,
)
from .fidelity import fidelity_checks, run_fidelity_sweep
from .observability import (
    observability_overhead_checks,
    run_observability_overhead,
)
from .parallel_scaling import (
    parallel_scaling_checks,
    run_parallel_speedup,
    run_vectorize_speedup,
)
from .harness import (
    DEFAULT_SCALE,
    Pipeline,
    address_pipeline,
    benchmark_scale,
    citation_pipeline,
    student_pipeline,
    train_scorer_for,
)
from .pruning_tables import PAPER_K_VALUES, run_pruning_table, shape_checks
from .report import format_table
from .robustness import robustness_checks, run_noise_sweep
from .serving import (
    run_serving_load,
    serving_report_rows,
    serving_slo_checks,
)
from .scaling import run_scaling_sweep, scaling_checks
from .storage_scale import run_storage_scale, storage_report_rows
from .timing import (
    PAPER_TIMING_K_VALUES,
    run_pruning_only_timing,
    run_timing_comparison,
    timing_shape_checks,
)

__all__ = [
    "DEFAULT_SCALE",
    "PAPER_K_VALUES",
    "PAPER_TIMING_K_VALUES",
    "Pipeline",
    "accuracy_shape_checks",
    "address_pipeline",
    "benchmark_scale",
    "chaos_checks",
    "citation_pipeline",
    "cpn_vs_naive_checks",
    "durability_checks",
    "fault_plane_overhead_checks",
    "fidelity_checks",
    "figure7_cases",
    "format_table",
    "parallel_scaling_checks",
    "prune_iteration_checks",
    "rank_query_checks",
    "run_accuracy_case",
    "run_chaos_sweep",
    "run_cpn_vs_naive",
    "run_cpn_vs_naive_constructed",
    "observability_overhead_checks",
    "run_durability_overhead",
    "run_fault_plane_overhead",
    "run_fidelity_sweep",
    "run_figure7",
    "run_observability_overhead",
    "run_prune_iterations_ablation",
    "robustness_checks",
    "run_noise_sweep",
    "run_parallel_speedup",
    "run_vectorize_speedup",
    "run_pruning_only_timing",
    "run_pruning_table",
    "run_recovery_cost",
    "run_scaling_sweep",
    "run_serving_load",
    "run_storage_scale",
    "serving_report_rows",
    "serving_slo_checks",
    "storage_report_rows",
    "run_rank_query_ablation",
    "run_segmentation_vs_hierarchy",
    "run_timing_comparison",
    "scaling_checks",
    "segmentation_vs_hierarchy_checks",
    "shape_checks",
    "student_pipeline",
    "table1",
    "timing_shape_checks",
    "train_scorer_for",
]
