"""X13: overload/soak harness for the always-on query service.

Drives seeded mixed traffic (inserts + all three query verbs) against a
real loopback :class:`~repro.server.http.HttpServer` in deliberate
overload — each burst offers several times the service's configured
capacity — with an optional :class:`~repro.testing.faultplane.FaultPlane`
armed for the middle of the run.  The service's SLO contract is then
checked mechanically:

* **every request resolves** — success, explicitly degraded, or shed
  with 429 (plus 503 during decline): no hangs, no silent drops, no
  stray statuses;
* **sheds are counted** — the admission controller's shed counters
  equal the 429s the clients actually saw;
* **queues stay bounded** — peak admitted work never exceeds the
  configured limits;
* **drain is durable** — after a graceful drain, restoring the state
  directory yields an engine whose top-K answer is bit-identical to a
  clean sequential replay of the seed records plus every acknowledged
  insert (a 200 on /insert is a durability promise).

``run_serving_load`` returns a report dict consumed by
:func:`serving_slo_checks` and the X13 benchmark's results table;
``REPRO_BENCH_LARGE=1`` scales the soak variant up in the benchmark.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
from pathlib import Path

from ..core.incremental import IncrementalTopK
from ..core.parallel import group_fingerprint
from ..core.persistence import DurabilityPolicy
from ..server import (
    AdmissionConfig,
    HttpServer,
    QueryService,
    ServerConfig,
    ServiceClient,
)
from .harness import citation_pipeline

#: Statuses the SLO contract allows a request to resolve with.
ALLOWED_STATUSES = frozenset({200, 429, 503})


def _insert_spec(rng: random.Random, store) -> dict:
    """A seeded insert payload: a perturbed copy of a real record."""
    source = store[rng.randrange(len(store))]
    fields = dict(source.fields)
    if rng.random() < 0.3:
        # Typo noise keeps the dedup predicates honestly exercised.
        key = "title" if "title" in fields else next(iter(fields))
        fields[key] = fields[key] + "x"
    return {
        "verb": "insert",
        "fields": fields,
        "weight": round(rng.uniform(0.5, 3.0), 3),
    }


def _query_spec(rng: random.Random, k: int, deadline: float) -> dict:
    kind = rng.choice(("topk", "topk", "rank", "threshold"))
    spec = {"verb": kind, "kind": kind, "deadline_seconds": deadline}
    if kind == "threshold":
        spec["min_weight"] = round(rng.uniform(1.0, 10.0), 2)
    else:
        spec["k"] = k
    return spec


def build_schedule(
    rng: random.Random,
    store,
    n_requests: int,
    insert_fraction: float,
    k: int,
    deadline: float,
) -> list[dict]:
    """The full seeded request mix, in launch order."""
    return [
        _insert_spec(rng, store)
        if rng.random() < insert_fraction
        else _query_spec(rng, k, deadline)
        for _ in range(n_requests)
    ]


async def _drive(
    root: Path,
    store,
    levels,
    schedule: list[dict],
    burst_size: int,
    config: ServerConfig,
    fault_plane,
    k: int,
) -> dict:
    """Serve, fire the schedule in overload bursts, drain; one report."""
    engine = IncrementalTopK(
        levels, durability=DurabilityPolicy(state_dir=root / "state")
    )
    for record in store:
        engine.add(record.fields, record.weight)
    service = QueryService(engine, config=config)
    server = HttpServer(service)
    await server.start()
    await service.start()
    port = server.port

    outcomes: list[dict] = []
    acked: list[tuple[int, dict, float]] = []

    async def one(spec: dict) -> None:
        async with ServiceClient("127.0.0.1", port, timeout=60.0) as client:
            if spec["verb"] == "insert":
                status, body = await client.insert(
                    spec["fields"], spec["weight"]
                )
                if status == 200 and not body.get("quarantined"):
                    acked.append(
                        (body["record_id"], spec["fields"], spec["weight"])
                    )
            else:
                payload = {
                    key: value
                    for key, value in spec.items()
                    if key != "verb"
                }
                status, body = await client.query(**payload)
            outcomes.append(
                {
                    "verb": spec["verb"],
                    "status": status,
                    "outcome": body.get("outcome", ""),
                }
            )

    bursts = [
        schedule[start : start + burst_size]
        for start in range(0, len(schedule), burst_size)
    ]
    # Arm the fault plane for the middle third of the run (the whole
    # run when there are too few bursts for a strict middle).
    fault_from = len(bursts) // 3
    fault_to = max(fault_from + 1, (2 * len(bursts)) // 3)
    with contextlib.ExitStack() as stack:
        for index, burst in enumerate(bursts):
            if fault_plane is not None and index == fault_from:
                stack.enter_context(fault_plane.active())
            if fault_plane is not None and index == fault_to:
                stack.close()
            await asyncio.gather(*(one(spec) for spec in burst))

    async with ServiceClient("127.0.0.1", port, timeout=60.0) as client:
        _, drain_report = await client.drain()
    await server.close()

    # Restart from the drained state directory: the recovered answer
    # must be bit-identical to a clean sequential replay of everything
    # that was acknowledged.
    restored = IncrementalTopK.restore(root / "state", levels)
    try:
        fingerprint_restored = group_fingerprint(restored.query(k).groups)
        entries_restored = restored.entries_applied
        dead_letters_restored = len(restored.dead_letters)
    finally:
        restored.close()

    replay = IncrementalTopK(levels)
    for record in store:
        replay.add(record.fields, record.weight)
    for _, fields, weight in sorted(acked, key=lambda item: item[0]):
        replay.add(fields, weight)
    fingerprint_replay = group_fingerprint(replay.query(k).groups)

    by_status: dict[int, int] = {}
    for row in outcomes:
        by_status[row["status"]] = by_status.get(row["status"], 0) + 1
    stats = service.stats.as_dict()
    admission = service.admission.stats.as_dict()
    return {
        "n_requests": len(schedule),
        "n_resolved": len(outcomes),
        "by_status": by_status,
        "by_outcome": _outcome_counts(outcomes),
        "acked_inserts": len(acked),
        "faults_injected": (
            fault_plane.total_injected if fault_plane is not None else 0
        ),
        "drain_report": drain_report,
        "service_stats": stats,
        "admission": admission,
        "dead_letters": dead_letters_restored,
        "entries_restored": entries_restored,
        "fingerprint_restored": fingerprint_restored,
        "fingerprint_replay": fingerprint_replay,
        "peak_pending": admission["peak_pending"],
        "config": {
            "max_pending_queries": config.admission.max_pending_queries,
            "max_pending_inserts": config.admission.max_pending_inserts,
            "burst_size": burst_size,
        },
    }


def _outcome_counts(outcomes: list[dict]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for row in outcomes:
        key = row["outcome"] or f"http-{row['status']}"
        counts[key] = counts.get(key, 0) + 1
    return counts


def run_serving_load(
    root: str | Path,
    n_seed_records: int = 120,
    n_requests: int = 160,
    insert_fraction: float = 0.4,
    overload_factor: int = 4,
    k: int = 5,
    deadline_seconds: float = 5.0,
    seed: int = 0,
    fault_plane=None,
    max_pending_queries: int = 4,
    max_pending_inserts: int = 32,
    checkpoint_every: int = 0,
) -> dict:
    """Run the X13 overload scenario; see the module docstring.

    Each burst launches ``overload_factor * (max_pending_queries +
    max_pending_inserts)`` concurrent requests — offered load is a
    multiple of everything the admission controller will accept, so
    load shedding *must* engage (and is then checked to be loud).
    """
    root = Path(root)
    pipeline = citation_pipeline(
        n_records=n_seed_records, seed=seed, with_scorer=False
    )
    rng = random.Random(seed * 7919 + 17)
    schedule = build_schedule(
        rng,
        pipeline.store,
        n_requests,
        insert_fraction,
        k,
        deadline_seconds,
    )
    burst_size = overload_factor * (max_pending_queries + max_pending_inserts)
    config = ServerConfig(
        label_field="title",
        admission=AdmissionConfig(
            max_pending_queries=max_pending_queries,
            max_concurrent_queries=2,
            max_pending_inserts=max_pending_inserts,
            default_deadline_seconds=deadline_seconds,
            retry_after_seconds=0.05,
        ),
        checkpoint_every=checkpoint_every,
        drain_grace_seconds=60.0,
        max_insert_batch=16,
    )
    report = asyncio.run(
        _drive(
            root,
            pipeline.store,
            pipeline.levels,
            schedule,
            burst_size,
            config,
            fault_plane,
            k,
        )
    )
    report["overload_factor"] = overload_factor
    return report


def serving_slo_checks(report: dict) -> dict[str, bool]:
    """The X13 SLO contract over one :func:`run_serving_load` report."""
    by_status = report["by_status"]
    shed_counted = sum(
        report["admission"]["shed"].values()
    )
    return {
        "every_request_resolved": (
            report["n_resolved"] == report["n_requests"]
        ),
        "only_contracted_statuses": set(by_status) <= ALLOWED_STATUSES,
        "sheds_are_counted_not_silent": (
            by_status.get(429, 0) == shed_counted
        ),
        "overload_actually_shed": by_status.get(429, 0) > 0,
        "queues_stayed_bounded": (
            report["peak_pending"]["query"]
            <= report["config"]["max_pending_queries"]
            and report["peak_pending"]["insert"]
            <= report["config"]["max_pending_inserts"]
        ),
        "drain_abandoned_nothing": (
            report["drain_report"].get("abandoned_inserts") == 0
            and report["drain_report"].get("abandoned_queries") == 0
        ),
        "restart_bit_identical_to_replay": (
            report["fingerprint_restored"] == report["fingerprint_replay"]
        ),
    }


def serving_report_rows(report: dict) -> list[dict[str, object]]:
    """Flatten one report into rows for the benchmark results table."""
    checks = serving_slo_checks(report)
    return [
        {
            "requests": report["n_requests"],
            "overload": f'{report["overload_factor"]}x',
            "ok": report["by_outcome"].get("ok", 0)
            + report["by_outcome"].get("quarantined", 0),
            "degraded": report["by_outcome"].get("degraded", 0),
            "shed_429": report["by_status"].get(429, 0),
            "unavailable_503": report["by_status"].get(503, 0),
            "faults": report["faults_injected"],
            "acked_inserts": report["acked_inserts"],
            "slo_ok": all(checks.values()),
        }
    ]
