"""X9: durability overhead and recovery cost (see docs/robustness.md).

Two questions the durable stream layer must answer with numbers:

1. **Insert overhead** — what does journaling every ``add`` to the
   write-ahead log cost, with and without per-entry fsync, relative to
   the purely in-memory engine?
2. **Recovery cost** — how long does rebuilding the engine from a
   crashed state directory take for a 10k-entry log, and how much of
   that a checkpoint saves by bounding the WAL tail that must be
   replayed?

Both are measured on the same seeded stream (names cycling through 500
entities, so the maintained closure stays realistic), and every
recovered engine is compared structurally against the uninterrupted
in-memory run.
"""

from __future__ import annotations

import time
from pathlib import Path

from ..core.incremental import IncrementalTopK
from ..core.persistence import DurabilityPolicy
from ..predicates.base import PredicateLevel
from ..predicates.library import ExactFieldsPredicate, NgramOverlapPredicate
from ..testing.crashpoints import stream_fingerprint


def _levels() -> list[PredicateLevel]:
    return [
        PredicateLevel(
            sufficient=ExactFieldsPredicate(["name"], name="exact-name"),
            necessary=NgramOverlapPredicate("name", 0.6, name="ngram-name"),
            name="x9-generic",
        )
    ]


def _events(n_inserts: int) -> list[tuple[dict[str, str], float]]:
    return [
        ({"name": f"entity-{i % 500}"}, 1.0 + (i % 7)) for i in range(n_inserts)
    ]


def _timed_stream(
    events: list[tuple[dict[str, str], float]],
    durability: DurabilityPolicy | None,
) -> tuple[float, IncrementalTopK]:
    engine = IncrementalTopK(_levels(), durability=durability)
    start = time.perf_counter()
    for fields, weight in events:
        engine.add(fields, weight)
    elapsed = time.perf_counter() - start
    engine.close()
    return elapsed, engine


def run_durability_overhead(
    n_inserts: int = 10_000,
    state_root: str | Path | None = None,
    tmp_factory=None,
) -> list[dict[str, object]]:
    """Insert throughput: in-memory vs WAL (fsync off) vs WAL (fsync on).

    One row per mode with total wall time, inserts/second, and the
    overhead factor relative to the in-memory baseline.  State
    directories are created under *state_root* (or via *tmp_factory*,
    a zero-argument callable returning a fresh directory).
    """
    if tmp_factory is None:
        if state_root is None:
            raise ValueError("run_durability_overhead needs a state location")
        root = Path(state_root)
        counter = iter(range(1_000_000))

        def tmp_factory() -> Path:
            path = root / f"overhead-{next(counter)}"
            path.mkdir(parents=True, exist_ok=True)
            return path

    events = _events(n_inserts)
    modes: list[tuple[str, DurabilityPolicy | None]] = [
        ("in-memory", None),
        ("wal", DurabilityPolicy(state_dir=tmp_factory(), fsync=False)),
        ("wal+fsync", DurabilityPolicy(state_dir=tmp_factory(), fsync=True)),
    ]
    rows: list[dict[str, object]] = []
    baseline_seconds = None
    reference = None
    for mode, durability in modes:
        elapsed, engine = _timed_stream(events, durability)
        if baseline_seconds is None:
            baseline_seconds = elapsed
            reference = stream_fingerprint(engine)
        rows.append(
            {
                "mode": mode,
                "inserts": n_inserts,
                "seconds": elapsed,
                "inserts_per_s": n_inserts / elapsed if elapsed else 0.0,
                "overhead_x": elapsed / baseline_seconds
                if baseline_seconds
                else 1.0,
                "state_identical": stream_fingerprint(engine) == reference,
            }
        )
    return rows


def run_recovery_cost(
    n_inserts: int = 10_000,
    state_root: str | Path | None = None,
    checkpoint_at_fraction: float = 0.9,
) -> list[dict[str, object]]:
    """Recovery wall time for an *n_inserts*-entry log, with and without
    a checkpoint taken at ``checkpoint_at_fraction`` of the stream.

    Both state directories hold the same stream; the checkpointed one
    replays only the WAL tail past the snapshot.  Every recovery is
    checked structurally against the uninterrupted in-memory engine.
    """
    if state_root is None:
        raise ValueError("run_recovery_cost needs a state location")
    root = Path(state_root)
    events = _events(n_inserts)
    _, reference_engine = _timed_stream(events, None)
    reference = stream_fingerprint(reference_engine)

    scenarios: list[tuple[str, int]] = [
        ("wal-only", 0),
        ("checkpoint+tail", max(1, int(n_inserts * checkpoint_at_fraction))),
    ]
    rows: list[dict[str, object]] = []
    for scenario, checkpoint_at in scenarios:
        state_dir = root / f"recovery-{scenario}"
        state_dir.mkdir(parents=True, exist_ok=True)
        policy = DurabilityPolicy(state_dir=state_dir, fsync=False)
        engine = IncrementalTopK(_levels(), durability=policy)
        for position, (fields, weight) in enumerate(events, start=1):
            engine.add(fields, weight)
            if checkpoint_at and position == checkpoint_at:
                engine.checkpoint()
        engine.close()

        start = time.perf_counter()
        recovered = IncrementalTopK.restore(state_dir, _levels())
        elapsed = time.perf_counter() - start
        info = recovered.last_recovery
        rows.append(
            {
                "scenario": scenario,
                "log_entries": n_inserts,
                "ckpt_entries": info.checkpoint_entries,
                "replayed": info.entries_replayed,
                "recovery_s": elapsed,
                "state_identical": stream_fingerprint(recovered) == reference,
            }
        )
        recovered.close()
    return rows


def durability_checks(
    overhead_rows: list[dict[str, object]],
    recovery_rows: list[dict[str, object]],
) -> dict[str, bool]:
    """Structural claims for X9 (timing-free, so they never flake)."""
    by_mode = {str(r["mode"]): r for r in overhead_rows}
    by_scenario = {str(r["scenario"]): r for r in recovery_rows}
    wal_only = by_scenario.get("wal-only", {})
    with_ckpt = by_scenario.get("checkpoint+tail", {})
    return {
        "all_modes_measured": {"in-memory", "wal", "wal+fsync"}
        <= set(by_mode),
        "wal_state_identical": all(
            bool(r["state_identical"]) for r in overhead_rows
        ),
        "recovery_state_identical": all(
            bool(r["state_identical"]) for r in recovery_rows
        ),
        "wal_only_replays_everything": wal_only.get("replayed")
        == wal_only.get("log_entries"),
        "checkpoint_bounds_replay": int(with_ckpt.get("replayed", -1))
        == int(with_ckpt.get("log_entries", 0))
        - int(with_ckpt.get("ckpt_entries", 0)),
    }
