"""X10: speedup of the sharded parallel pipeline vs. worker count.

The parallel execution layer (:mod:`repro.core.parallel`) promises two
things: **bit-identical results** at every worker count, and wall-clock
speedup on multi-core hardware once the S/N predicate work dominates.
This driver measures both on the fig2-scale citations workload: one
serial baseline run, then the same query at each requested worker
count, recording seconds, speedup, and whether the group partition
matches the serial one exactly.

Speedup is hardware-bound — a single-core host can only show parity —
so :func:`parallel_scaling_checks` asserts the identity invariant
unconditionally but gates the >= 1.5x-at-4-workers expectation on the
machine actually having 4 CPUs.
"""

from __future__ import annotations

import contextlib
import os
import time

from ..core.parallel import group_fingerprint
from ..core.pruned_dedup import pruned_dedup
from ..predicates.batch import VECTORIZE_ENV_VAR
from .harness import benchmark_scale, citation_pipeline

#: Required speedup at >= 4 workers on a >= 4-core machine.
SPEEDUP_TARGET = 1.5

#: The bench-smoke CI job's floor: at reduced scale, the best parallel
#: worker count must at least match the serial run (>= parity) on any
#: host with 2+ cores.  Shared-memory shard transport is what makes
#: this hold at small scale — pickling the records used to eat the win.
SMOKE_SPEEDUP_FLOOR = 1.0


@contextlib.contextmanager
def _vectorize(enabled: bool):
    old = os.environ.get(VECTORIZE_ENV_VAR)
    os.environ[VECTORIZE_ENV_VAR] = "1" if enabled else "0"
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(VECTORIZE_ENV_VAR, None)
        else:
            os.environ[VECTORIZE_ENV_VAR] = old


def run_parallel_speedup(
    n_records: int | None = None,
    k: int = 10,
    worker_counts: tuple[int, ...] = (1, 2, 4),
    seed: int = 0,
) -> list[dict[str, object]]:
    """Run the pruning pipeline at each worker count; return one row each.

    The ``workers=1`` row is the serial baseline the other rows'
    ``speedup`` and ``identical`` columns are computed against.
    """
    n = n_records if n_records is not None else benchmark_scale()
    pipeline = citation_pipeline(n_records=n, seed=seed, with_scorer=False)
    rows: list[dict[str, object]] = []
    baseline_seconds: float | None = None
    baseline_fingerprint = None
    for workers in worker_counts:
        start = time.perf_counter()
        result = pruned_dedup(pipeline.store, k, pipeline.levels, workers=workers)
        seconds = time.perf_counter() - start
        fingerprint = group_fingerprint(result.groups)
        if baseline_seconds is None:
            baseline_seconds = seconds
            baseline_fingerprint = fingerprint
        rows.append(
            {
                "n_records": n,
                "K": k,
                "workers": workers,
                "seconds": seconds,
                "speedup": baseline_seconds / seconds if seconds > 0 else 0.0,
                "retained_groups": len(result.groups),
                "shards_degraded": result.counters.shards_degraded
                if result.counters is not None
                else 0,
                "identical": fingerprint == baseline_fingerprint,
            }
        )
    return rows


def run_vectorize_speedup(
    n_records: int | None = None,
    k: int = 10,
    worker_counts: tuple[int, ...] = (1, 2, 4),
    seed: int = 0,
) -> list[dict[str, object]]:
    """Scalar reference vs vectorized batch path vs vectorized+sharded.

    The first row is the forced-scalar serial run (``REPRO_VECTORIZE=0``,
    ``workers=1``); every other row runs the vectorized hot path at one
    worker count.  ``speedup`` is relative to the scalar row, so the
    ``workers=1`` vectorized row isolates the batch-kernel win and the
    multi-worker rows add the shared-memory shard win on top.
    """
    n = n_records if n_records is not None else benchmark_scale()
    pipeline = citation_pipeline(n_records=n, seed=seed, with_scorer=False)
    rows: list[dict[str, object]] = []

    def run(mode: str, vectorized: bool, workers: int):
        with _vectorize(vectorized):
            start = time.perf_counter()
            result = pruned_dedup(
                pipeline.store, k, pipeline.levels, workers=workers
            )
            seconds = time.perf_counter() - start
        return {
            "n_records": n,
            "K": k,
            "mode": mode,
            "workers": workers,
            "seconds": seconds,
            "fingerprint": group_fingerprint(result.groups),
            "shards_degraded": result.counters.shards_degraded
            if result.counters is not None
            else 0,
        }

    baseline = run("scalar", False, 1)
    rows.append(baseline)
    for workers in worker_counts:
        rows.append(run("vectorized", True, workers))
    baseline_seconds = baseline["seconds"]
    baseline_fingerprint = baseline["fingerprint"]
    for row in rows:
        row["speedup"] = (
            baseline_seconds / row["seconds"] if row["seconds"] > 0 else 0.0
        )
        row["identical"] = row["fingerprint"] == baseline_fingerprint
        del row["fingerprint"]
    return rows


def parallel_scaling_checks(
    rows: list[dict[str, object]],
) -> dict[str, bool]:
    """Validate the X10 sweep.

    ``identical_at_all_worker_counts`` must hold everywhere.  The
    speedup target only binds when the host has enough cores to make it
    physically possible; elsewhere it is recorded as trivially true so
    the benchmark stays meaningful on laptops and single-core CI.
    """
    cpus = os.cpu_count() or 1
    speedup_ok = all(
        row["speedup"] >= SPEEDUP_TARGET
        for row in rows
        if row["workers"] >= 4 and cpus >= 4
    )
    return {
        "identical_at_all_worker_counts": all(
            row["identical"] for row in rows
        ),
        "no_shards_degraded": all(
            row["shards_degraded"] == 0 for row in rows
        ),
        "speedup_target_met_where_possible": speedup_ok,
    }
