"""Figure 7 and Table 1: accuracy of the segmentation method vs exact LP.

For each of the four small labeled datasets the paper uses, we:

1. train the final classifier on 50% of the gold groups;
2. score candidate pairs (restricted by that dataset's cheap necessary
   predicate, keeping the LP tractable — all methods see the same pairs);
3. solve the correlation-clustering LP (the exact reference when it
   returns integral solutions);
4. cluster with Embedding+Segmentation and with TransitiveClosure;
5. report pairwise F1 of each against the LP partition — the paper's
   Figure 7 — plus record/group counts for Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clustering.correlation import ScoreMatrix, partition_score
from ..clustering.lp import lp_cluster
from ..clustering.metrics import pairwise_f1
from ..clustering.transitive import transitive_closure_clusters
from ..datasets import (
    generate_address_sample,
    generate_author_sample,
    generate_getoor_sample,
    generate_restaurants,
)
from ..datasets.base import SyntheticDataset
from ..embedding.greedy import greedy_embedding
from ..embedding.segmentation import auto_max_span, best_partition
from ..embedding.spectral import spectral_embedding
from ..predicates import address_levels, citation_n1
from ..predicates.base import Predicate
from ..predicates.library import NgramOverlapPredicate
from .harness import train_scorer_for


@dataclass
class AccuracyCase:
    """One Figure-7 dataset: generator + featurizer kind + canopy."""

    name: str
    dataset: SyntheticDataset
    featurizer_kind: str
    candidate_predicate: Predicate
    levels: list


def figure7_cases(scale: float = 1.0) -> list[AccuracyCase]:
    """The four Table-1 datasets at *scale* times their paper sizes."""
    authors = generate_author_sample(n_records=max(40, int(1822 * scale)))
    restaurants = generate_restaurants(n_records=max(40, int(860 * scale)))
    addresses = generate_address_sample(n_records=max(40, int(306 * scale)))
    getoor = generate_getoor_sample(n_records=max(40, int(1716 * scale)))
    return [
        AccuracyCase(
            name="Authors",
            dataset=authors,
            featurizer_kind="name",
            candidate_predicate=NgramOverlapPredicate(
                "name", 0.6, name="authors-canopy"
            ),
            levels=[],
        ),
        AccuracyCase(
            name="Restaurant",
            dataset=restaurants,
            featurizer_kind="restaurant",
            candidate_predicate=NgramOverlapPredicate(
                "name", 0.4, name="restaurant-canopy"
            ),
            levels=[],
        ),
        AccuracyCase(
            name="Address",
            dataset=addresses,
            featurizer_kind="address",
            candidate_predicate=address_levels(addresses.store)[0].necessary,
            levels=[],
        ),
        AccuracyCase(
            name="Getoor",
            dataset=getoor,
            featurizer_kind="citation",
            candidate_predicate=citation_n1(),
            levels=[],
        ),
    ]


def run_accuracy_case(
    case: AccuracyCase,
    max_span: int | None = None,
    embedding: str = "greedy",
    seed: int = 0,
) -> dict[str, object]:
    """Run one Figure-7 comparison; return the row of metrics."""
    dataset = case.dataset
    scorer = train_scorer_for(
        dataset,
        case.featurizer_kind,
        levels=[_level_shim(case.candidate_predicate)],
        seed=seed,
    )
    scores = ScoreMatrix.from_scorer(
        list(dataset.store), scorer, case.candidate_predicate
    )

    lp = lp_cluster(scores)
    if embedding == "greedy":
        arrangement = greedy_embedding(scores)
    elif embedding == "spectral":
        arrangement = spectral_embedding(scores)
    else:
        raise ValueError(f"unknown embedding {embedding!r}")
    span = auto_max_span(scores) if max_span is None else max_span
    segmented = best_partition(scores, arrangement, max_span=span)
    transitive = transitive_closure_clusters(scores)

    return {
        "dataset": case.name,
        "records": dataset.n_records,
        "lp_groups": len(lp.partition),
        "lp_integral": lp.integral,
        "seg_f1": 100.0 * pairwise_f1(segmented, lp.partition),
        "transitive_f1": 100.0 * pairwise_f1(transitive, lp.partition),
        "seg_vs_gold_f1": 100.0 * pairwise_f1(segmented, dataset.gold_partition()),
        "lp_vs_gold_f1": 100.0
        * pairwise_f1(lp.partition, dataset.gold_partition()),
        "seg_score": partition_score(segmented, scores),
        "lp_score": partition_score(lp.partition, scores),
    }


def run_figure7(
    scale: float = 1.0, max_span: int | None = None, embedding: str = "greedy"
) -> list[dict[str, object]]:
    """Regenerate Figure 7 (one row per dataset)."""
    return [
        run_accuracy_case(case, max_span=max_span, embedding=embedding)
        for case in figure7_cases(scale)
    ]


def table1(rows: list[dict[str, object]]) -> list[dict[str, object]]:
    """Project the Figure-7 rows down to Table 1 (records, LP groups)."""
    return [
        {
            "Name": r["dataset"],
            "# Records": r["records"],
            "# Groups in LP": r["lp_groups"],
        }
        for r in rows
    ]


def accuracy_shape_checks(rows: list[dict[str, object]]) -> dict[str, bool]:
    """Figure 7's qualitative claims.

    Embedding+Segmentation tracks the exact LP very closely (paper: >=99%
    on all four datasets; we require >=95% because remaining disagreement
    comes from the LP's hard-non-link restriction on unscored pairs, see
    :mod:`repro.clustering.lp`), never loses to TransitiveClosure
    (paper: 92-96%), and its partition never scores below the LP's under
    Eq. 1 — when the two differ, the segmentation found an equally good
    or better grouping.
    """
    return {
        "segmentation_high_f1": all(float(r["seg_f1"]) >= 95.0 for r in rows),
        "segmentation_ge_transitive": all(
            float(r["seg_f1"]) >= float(r["transitive_f1"]) - 1e-9 for r in rows
        ),
        "segmentation_score_ge_lp": all(
            float(r["seg_score"]) >= float(r["lp_score"]) - 1e-6 for r in rows
        ),
    }


def _level_shim(predicate: Predicate):
    """Wrap a bare candidate predicate as a PredicateLevel-alike for
    training-pair sampling (which only reads ``.necessary``)."""
    from ..predicates.base import PredicateLevel

    return PredicateLevel(sufficient=predicate, necessary=predicate)
