"""X11: overhead of the observability layer on the Figure-6 workload.

The tracing/metrics subsystem promises to be effectively free: a query
run under the default :class:`~repro.observability.NullTracer` does no
clock reads, counter snapshots, or allocations for observability, and
even a fully armed :class:`~repro.observability.Tracer` +
:class:`~repro.observability.MetricsRegistry` only touches the
per-*stage* path (a handful of spans per level) plus cheap sampled
histograms — never the per-pair inner loops.

This driver times the Figure-6 citation count query three ways — null
(default), fully traced, and traced-plus-export — taking the best of
*repeats* runs per mode to suppress scheduler noise, and verifies the
traced answers are identical to the null-path answers.
"""

from __future__ import annotations

import io
import time

from ..core.topk import topk_count_query
from ..core.verification import VerificationContext
from ..observability import (
    MetricsRegistry,
    Tracer,
    prometheus_text,
    trace_to_jsonl,
)
from .harness import benchmark_scale, citation_pipeline

#: Maximum tolerated slowdown of a fully traced run over the null path.
OVERHEAD_LIMIT = 0.05


def _answer_signature(result) -> list:
    return [
        [(entity.record_ids, entity.weight) for entity in answer.entities]
        for answer in result.answers
    ]


def run_observability_overhead(
    n_records: int | None = None,
    k: int = 10,
    seed: int = 0,
    repeats: int = 3,
) -> list[dict[str, object]]:
    """Time the fig6 count query under each observability mode.

    Returns one row per mode with best-of-*repeats* seconds, overhead
    relative to the null baseline, the span count a traced run
    produces, and whether its answers match the null run's exactly.
    """
    n = n_records if n_records is not None else benchmark_scale()
    pipeline = citation_pipeline(n_records=n, seed=seed, with_scorer=True)
    store, levels, scorer = pipeline.store, pipeline.levels, pipeline.scorer

    def timed(run) -> tuple[float, object]:
        best_seconds, best_payload = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            payload = run()
            seconds = time.perf_counter() - start
            if seconds < best_seconds:
                best_seconds, best_payload = seconds, payload
        return best_seconds, best_payload

    def null_run():
        result = topk_count_query(store, k, levels, scorer)
        return _answer_signature(result), 0

    def traced_run(export: bool):
        context = VerificationContext(
            tracer=Tracer(), metrics=MetricsRegistry()
        )
        result = topk_count_query(store, k, levels, scorer, context=context)
        n_spans = sum(
            1 for root in context.tracer.roots for _ in root.walk()
        )
        if export:
            n_spans = trace_to_jsonl(
                context.tracer, io.StringIO(), mode="full"
            )
            prometheus_text(context.metrics)
        return _answer_signature(result), n_spans

    null_seconds, (null_answers, _) = timed(null_run)
    rows: list[dict[str, object]] = [
        {
            "n_records": n,
            "K": k,
            "mode": "null (default)",
            "seconds": null_seconds,
            "overhead_pct": 0.0,
            "spans": 0,
            "identical": True,
        }
    ]
    for mode, export in (("traced", False), ("traced+export", True)):
        seconds, (answers, n_spans) = timed(lambda: traced_run(export))
        rows.append(
            {
                "n_records": n,
                "K": k,
                "mode": mode,
                "seconds": seconds,
                "overhead_pct": 100.0 * (seconds / null_seconds - 1.0)
                if null_seconds > 0
                else 0.0,
                "spans": n_spans,
                "identical": answers == null_answers,
            }
        )
    return rows


def observability_overhead_checks(
    rows: list[dict[str, object]],
) -> dict[str, bool]:
    """Validate the X11 sweep: answers untouched, tracing within budget.

    The < 5% bound binds the pure tracing mode; the export mode is
    informational (serialization cost scales with trace size, not with
    query work, and is paid once at the end).
    """
    traced = next(row for row in rows if row["mode"] == "traced")
    return {
        "answers_identical_in_all_modes": all(
            row["identical"] for row in rows
        ),
        "tracing_overhead_below_limit": (
            traced["overhead_pct"] <= 100.0 * OVERHEAD_LIMIT
        ),
        "traced_run_produced_spans": traced["spans"] > 0,
    }
