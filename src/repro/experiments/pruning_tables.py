"""Figures 2-4: per-K pruning statistics tables.

For each K the paper reports, per predicate level: ``n`` (groups after
collapse, % of records), ``m`` (rank certifying K distinct groups),
``M`` (the weight lower bound) and ``n'`` (groups after pruning, % of
records).  :func:`run_pruning_table` regenerates those rows for any of
the three dataset pipelines.
"""

from __future__ import annotations

from ..core.pruned_dedup import pruned_dedup
from .harness import Pipeline

#: The K sweep of Figures 2-4.
PAPER_K_VALUES = (1, 5, 10, 50, 100, 500, 1000)


def run_pruning_table(
    pipeline: Pipeline,
    k_values: tuple[int, ...] = PAPER_K_VALUES,
    prune_iterations: int = 2,
) -> list[dict[str, object]]:
    """Return one row per (K, level): the Figures 2-4 statistics."""
    rows: list[dict[str, object]] = []
    for k in k_values:
        if k > len(pipeline.store):
            continue
        result = pruned_dedup(
            pipeline.store, k, pipeline.levels, prune_iterations=prune_iterations
        )
        for level_index, stats in enumerate(result.stats, start=1):
            rows.append(
                {
                    "K": k,
                    "iter": level_index,
                    "n_pct": stats.n_pct,
                    "m": stats.m,
                    "M": stats.bound,
                    "n_prime_pct": stats.n_prime_pct,
                    "groups_left": stats.n_groups_after_prune,
                    "certified": stats.certified,
                }
            )
    return rows


def shape_checks(rows: list[dict[str, object]]) -> dict[str, bool]:
    """The qualitative claims the paper's tables support.

    * pruning keeps a small fraction of the data at small K;
    * retained fraction grows with K;
    * the bound M shrinks as K grows;
    * m stays close to K at small K (the estimator is tight).
    """
    last_iter = max(int(r["iter"]) for r in rows)
    final = {int(r["K"]): r for r in rows if r["iter"] == last_iter}
    ks = sorted(final)
    small_k = ks[0]
    checks = {
        "small_k_prunes_hard": float(final[small_k]["n_prime_pct"]) < 10.0,
        "retained_grows_with_k": all(
            float(final[a]["n_prime_pct"]) <= float(final[b]["n_prime_pct"]) + 1.0
            for a, b in zip(ks, ks[1:])
        ),
        "bound_shrinks_with_k": all(
            float(final[a]["M"]) >= float(final[b]["M"])
            for a, b in zip(ks, ks[1:])
        ),
        "m_tight_at_small_k": all(
            int(final[k]["m"]) <= max(3 * k, k + 10)
            for k in ks
            if k <= 10 and final[k]["certified"]
        ),
    }
    return checks
