"""X12: clean-path overhead of the fault plane and hardened fault sites.

PR 7 threaded :func:`~repro.core.retry.fire_fault` calls through every
hardened fault site — WAL appends and fsyncs, checkpoint writes,
shared-memory create/attach, shard entry — and wrapped the storage hot
path in :class:`~repro.core.retry.RetryPolicy`.  The promise mirrors
X11's for observability: with no hook installed a fault site costs one
module-global read and a ``None`` check, and a FaultPlane armed with
all-zero rates costs one early-returning method call per site — the
robustness machinery is effectively free until a fault actually fires.

This driver times a durable-stream workload (journal every citation
record into a WAL-backed engine, then answer the top-K count query)
three ways — unhooked (the production default), armed with a zero-rate
:class:`~repro.testing.faultplane.FaultPlane`, and armed with metrics
attached — best of *repeats* runs per mode, and verifies the answers
are bit-identical in every mode and that the zero-rate plane injected
nothing.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from ..core.incremental import IncrementalTopK
from ..core.parallel import group_fingerprint
from ..core.persistence import DurabilityPolicy
from ..observability import MetricsRegistry
from ..testing.faultplane import FaultPlane
from .harness import benchmark_scale, citation_pipeline

#: Maximum tolerated slowdown of an armed zero-rate run over the
#: unhooked path.
OVERHEAD_LIMIT = 0.05


def _stream_once(store, levels, k: int, root: Path):
    """Journal every record into a fresh durable engine, then query."""
    policy = DurabilityPolicy(state_dir=root / "state")
    engine = IncrementalTopK(levels, durability=policy)
    try:
        for record in store:
            engine.add(record.fields, record.weight)
        result = engine.query(k)
        return group_fingerprint(result.groups), engine.entries_applied
    finally:
        engine.close()


def run_fault_plane_overhead(
    n_records: int | None = None,
    k: int = 10,
    seed: int = 0,
    repeats: int = 3,
) -> list[dict[str, object]]:
    """Time the durable-stream workload under each fault-plane mode.

    Returns one row per mode with best-of-*repeats* seconds, overhead
    relative to the unhooked baseline, the number of faults the plane
    injected (must stay 0 at zero rates), and whether the mode's
    answers match the unhooked run's exactly.
    """
    n = n_records if n_records is not None else benchmark_scale()
    pipeline = citation_pipeline(n_records=n, seed=seed, with_scorer=False)
    store, levels = pipeline.store, pipeline.levels

    def timed(run):
        best_seconds, best_payload = float("inf"), None
        for _ in range(repeats):
            with tempfile.TemporaryDirectory() as tmp:
                start = time.perf_counter()
                payload = run(Path(tmp))
                seconds = time.perf_counter() - start
            if seconds < best_seconds:
                best_seconds, best_payload = seconds, payload
        return best_seconds, best_payload

    def unhooked(root: Path):
        return _stream_once(store, levels, k, root), 0

    def armed(root: Path, metrics=None):
        plane = FaultPlane(seed=seed)  # every rate zero
        with plane.active(metrics=metrics):
            payload = _stream_once(store, levels, k, root)
        return payload, plane.total_injected

    base_seconds, (base_payload, _) = timed(unhooked)
    rows: list[dict[str, object]] = [
        {
            "n_records": n,
            "K": k,
            "mode": "unhooked (default)",
            "seconds": base_seconds,
            "overhead_pct": 0.0,
            "faults_injected": 0,
            "identical": True,
        }
    ]
    modes = (
        ("armed (zero rates)", lambda root: armed(root)),
        (
            "armed+metrics",
            lambda root: armed(root, metrics=MetricsRegistry()),
        ),
    )
    for mode, run in modes:
        seconds, (payload, injected) = timed(run)
        rows.append(
            {
                "n_records": n,
                "K": k,
                "mode": mode,
                "seconds": seconds,
                "overhead_pct": 100.0 * (seconds / base_seconds - 1.0)
                if base_seconds > 0
                else 0.0,
                "faults_injected": injected,
                "identical": payload == base_payload,
            }
        )
    return rows


def fault_plane_overhead_checks(
    rows: list[dict[str, object]],
) -> dict[str, bool]:
    """Validate the X12 sweep: answers untouched, arming within budget.

    The < 5% bound binds the zero-rate armed mode; the metrics-attached
    mode is informational (it additionally pays the registry's counter
    path, already bounded by X11).
    """
    armed = next(row for row in rows if row["mode"] == "armed (zero rates)")
    return {
        "answers_identical_in_all_modes": all(
            row["identical"] for row in rows
        ),
        "zero_rate_plane_injected_nothing": all(
            row["faults_injected"] == 0 for row in rows
        ),
        "armed_overhead_below_limit": (
            armed["overhead_pct"] <= 100.0 * OVERHEAD_LIMIT
        ),
    }
