"""Ablation experiments (DESIGN.md X1-X4).

* X1 — prune-iteration depth: Section 6.2 reports the second upper-bound
  pass roughly doubles pruning while a third adds little.
* X2 — CPN bound vs the naive sequential bound for estimating (m, M).
* X3 — segmentation over an embedding vs best hierarchy frontier
  (Section 5.3's claim that segmentations strictly generalize frontiers),
  plus greedy vs spectral embedding quality.
* X4 — rank-query extra pruning over the count query's (Section 7.1).
"""

from __future__ import annotations

from ..clustering.correlation import ScoreMatrix, partition_score
from ..clustering.hierarchical import agglomerate, divide_and_merge
from ..core.collapse import collapse
from ..core.lower_bound import estimate_lower_bound, estimate_lower_bound_naive
from ..core.prune import prune
from ..core.pruned_dedup import pruned_dedup
from ..core.rank_query import topk_rank_query
from ..core.records import GroupSet
from ..embedding.greedy import LinearEmbedding, greedy_embedding
from ..embedding.segmentation import auto_max_span, best_partition
from ..embedding.spectral import spectral_embedding
from .harness import Pipeline


def run_prune_iterations_ablation(
    pipeline: Pipeline,
    k_values: tuple[int, ...] = (1, 10, 100),
    iteration_counts: tuple[int, ...] = (1, 2, 3),
) -> list[dict[str, object]]:
    """X1: groups retained per K as prune iterations increase."""
    rows = []
    for k in k_values:
        if k > len(pipeline.store):
            continue
        for iterations in iteration_counts:
            result = pruned_dedup(
                pipeline.store,
                k,
                pipeline.levels,
                prune_iterations=iterations,
            )
            rows.append(
                {
                    "K": k,
                    "iterations": iterations,
                    "retained_groups": len(result.groups),
                    "retained_pct": 100.0 * result.retained_fraction,
                }
            )
    return rows


def prune_iteration_checks(rows: list[dict[str, object]]) -> dict[str, bool]:
    """Pass 2 must never retain more than pass 1; pass 3 adds little."""
    by_key = {(r["K"], r["iterations"]): int(r["retained_groups"]) for r in rows}
    ks = sorted({r["K"] for r in rows})
    return {
        "second_pass_tightens": all(
            by_key[(k, 2)] <= by_key[(k, 1)] for k in ks
        ),
        "third_pass_marginal": all(
            by_key[(k, 2)] - by_key[(k, 3)]
            <= max(1, (by_key[(k, 1)] - by_key[(k, 2)]))
            for k in ks
        ),
    }


def run_cpn_vs_naive(
    pipeline: Pipeline, k_values: tuple[int, ...] = (1, 5, 10, 50)
) -> list[dict[str, object]]:
    """X2: (m, M) from the CPN bound vs the naive sequential bound."""
    group_set = GroupSet.singletons(pipeline.store)
    for level in pipeline.levels:
        group_set = collapse(group_set, level.sufficient)
    necessary = pipeline.levels[-1].necessary

    rows = []
    for k in k_values:
        if k > len(group_set):
            continue
        cpn = estimate_lower_bound(group_set, necessary, k)
        naive = estimate_lower_bound_naive(group_set, necessary, k)
        retained_cpn = len(prune(group_set, necessary, cpn.bound).retained)
        retained_naive = len(prune(group_set, necessary, naive.bound).retained)
        rows.append(
            {
                "K": k,
                "m_cpn": cpn.m,
                "M_cpn": cpn.bound,
                "retained_cpn": retained_cpn,
                "m_naive": naive.m,
                "M_naive": naive.bound,
                "retained_naive": retained_naive,
            }
        )
    return rows


def cpn_vs_naive_checks(rows: list[dict[str, object]]) -> dict[str, bool]:
    """The CPN bound is never worse and certifies no later than naive."""
    return {
        "m_no_later": all(int(r["m_cpn"]) <= int(r["m_naive"]) for r in rows),
        "bound_no_smaller": all(
            float(r["M_cpn"]) >= float(r["M_naive"]) for r in rows
        ),
        "pruning_no_weaker": all(
            int(r["retained_cpn"]) <= int(r["retained_naive"]) for r in rows
        ),
    }


def run_segmentation_vs_hierarchy(
    scores: ScoreMatrix,
) -> dict[str, object]:
    """X3: Eq. 2 score of the best hierarchy frontier vs segmentation DPs
    over three orderings (hierarchy leaves, greedy, spectral)."""
    hierarchy = agglomerate(scores, linkage="average")
    _, frontier_score = hierarchy.best_frontier(scores)
    _, divide_merge_score = divide_and_merge(scores).best_frontier(scores)
    span = auto_max_span(scores)

    leaf_embedding = LinearEmbedding(order=hierarchy.leaf_order(), breaks={0})
    leaf_partition = best_partition(scores, leaf_embedding, max_span=span)
    greedy_partition = best_partition(
        scores, greedy_embedding(scores), max_span=span
    )
    spectral_partition = best_partition(
        scores, spectral_embedding(scores), max_span=span
    )
    return {
        "frontier_score": frontier_score,
        "divide_and_merge_score": divide_merge_score,
        "segmentation_on_leaves": partition_score(leaf_partition, scores),
        "segmentation_on_greedy": partition_score(greedy_partition, scores),
        "segmentation_on_spectral": partition_score(spectral_partition, scores),
    }


def segmentation_vs_hierarchy_checks(row: dict[str, object]) -> dict[str, bool]:
    """Segmenting the hierarchy's own leaf order must dominate frontiers."""
    return {
        "leaves_dominate_frontier": float(row["segmentation_on_leaves"])
        >= float(row["frontier_score"]) - 1e-9,
    }


def run_cpn_vs_naive_constructed() -> list[dict[str, object]]:
    """X2 (constructed): the paper's Figure-1 graph, where the CPN bound
    certifies K = 2 at rank 3 while the naive bound needs the whole list.

    On clean pipelines both bounds often coincide (top groups are rarely
    N-connected); this constructed instance exhibits the strict
    separation the paper motivates.
    """
    from ..core.records import RecordStore
    from ..predicates.base import FunctionPredicate

    store = RecordStore.from_rows(
        [{"name": f"c{i}"} for i in range(1, 6)],
        weights=[50.0, 40.0, 30.0, 20.0, 10.0],
    )
    edges = {(0, 1), (0, 4), (1, 2), (1, 3), (2, 3)}

    def connected(a, b):
        pair = (min(a.record_id, b.record_id), max(a.record_id, b.record_id))
        return pair in edges

    predicate = FunctionPredicate(
        evaluate_fn=connected, keys_fn=lambda r: ["all"], name="figure-1"
    )
    group_set = GroupSet.singletons(store)
    cpn = estimate_lower_bound(group_set, predicate, 2)
    naive = estimate_lower_bound_naive(group_set, predicate, 2)
    return [
        {
            "K": 2,
            "m_cpn": cpn.m,
            "M_cpn": cpn.bound,
            "m_naive": naive.m,
            "M_naive": naive.bound,
            "cpn_certified": cpn.certified,
            "naive_certified": naive.certified,
        }
    ]


def run_rank_query_ablation(
    pipeline: Pipeline, k_values: tuple[int, ...] = (1, 10, 100)
) -> list[dict[str, object]]:
    """X4: records retained by the rank query vs the count query."""
    rows = []
    for k in k_values:
        if k > len(pipeline.store):
            continue
        count = pruned_dedup(pipeline.store, k, pipeline.levels)
        rank = topk_rank_query(pipeline.store, k, pipeline.levels)
        rows.append(
            {
                "K": k,
                "count_retained": len(count.groups),
                "rank_retained": rank.n_retained,
                "extra_pruned": rank.n_extra_pruned,
            }
        )
    return rows


def rank_query_checks(rows: list[dict[str, object]]) -> dict[str, bool]:
    """The rank query never retains more than the count query."""
    return {
        "rank_no_bigger": all(
            int(r["rank_retained"]) <= int(r["count_retained"]) for r in rows
        ),
    }
