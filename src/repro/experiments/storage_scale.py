"""X14: cold-start scaling of the columnar record store.

The claim under test (docs/storage.md): a corpus checkpointed through
``store="columnar"`` cold-starts from its compacted checkpoint by
memory-mapping the sidecar — no WAL replay, no per-record JSON
parsing — so both restore-to-ready wall time and peak RSS come in
below the in-memory store restoring the same corpus from its inline
JSON checkpoint.

Each cold start runs in a **fresh subprocess** so peak RSS
(``ru_maxrss``) measures exactly one restore: interpreter + import +
``IncrementalTopK.restore`` + ``audit`` + one top-k query touching the
restored state.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from ..core.incremental import IncrementalTopK
from ..core.persistence import DurabilityPolicy
from ..predicates.base import PredicateLevel
from ..predicates.library import ExactFieldsPredicate, NgramOverlapPredicate

STORE_KINDS = ("memory", "columnar")


def bench_levels() -> list[PredicateLevel]:
    """One level, importable from the cold-start subprocess."""
    return [
        PredicateLevel(
            ExactFieldsPredicate(["name"]),
            NgramOverlapPredicate(field="name", threshold=0.6),
        )
    ]


def synthetic_events(n_records: int, seed: int = 0):
    """Seeded mention stream: ~3 mentions per entity, weighted."""
    import random

    rng = random.Random(seed)
    n_entities = max(1, n_records // 3)
    for _ in range(n_records):
        entity = rng.randrange(n_entities)
        suffix = rng.choice(["", " jr", " sr", " iii"])
        yield (
            {"name": f"entity {entity}{suffix}", "city": f"c{entity % 97}"},
            float(rng.randrange(1, 5)),
        )


def build_state_dir(
    work_dir: str | Path, n_records: int, *, seed: int = 0, store: str
) -> Path:
    """Feed the synthetic stream into a durable engine and compact it.

    Returns the state directory; after the final ``checkpoint()`` the
    WAL is fully subsumed, so a restore replays zero entries — cold
    start measures checkpoint loading alone.
    """
    state_dir = Path(work_dir) / f"state-{store}"
    policy = DurabilityPolicy(state_dir, fsync=False, keep_checkpoints=1)
    engine = IncrementalTopK(bench_levels(), durability=policy, store=store)
    for fields, weight in synthetic_events(n_records, seed):
        engine.add(fields, weight)
    engine.checkpoint()
    engine.close()
    return state_dir


def _peak_rss_kb() -> int:
    """This process's peak resident set in kB (VmHWM; see below)."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    import resource  # non-Linux fallback (macOS resets ru_maxrss at exec)

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _cold_start_main() -> None:
    """Subprocess entry: restore to *ready*, report one JSON line.

    Ready means the engine can serve: state restored, closure audited.
    Deliberately no top-k query — predicate verification cost is the
    same either way and would swamp the restore-path difference the
    benchmark exists to measure.

    Peak RSS comes from ``/proc/self/status`` ``VmHWM``, which resets
    at exec; ``ru_maxrss`` does NOT reset across exec on Linux, so a
    forked child would inherit the launching process's high-water mark
    and both store kinds would report the parent's peak.
    """
    state_dir, store = sys.argv[1], sys.argv[2]
    started = time.perf_counter()
    engine = IncrementalTopK.restore(state_dir, bench_levels(), store=store)
    problems = engine.audit()
    elapsed = time.perf_counter() - started
    info = engine.last_recovery
    _parent, _size, n_components = engine._uf.state()
    print(
        json.dumps(
            {
                "cold_start_s": elapsed,
                "maxrss_kb": _peak_rss_kb(),
                "entries": engine.entries_applied,
                "entries_replayed": info.entries_replayed,
                "checkpoint_entries": info.checkpoint_entries,
                "audit_problems": len(problems),
                "n_components": n_components,
            }
        )
    )
    engine.close()


def measure_cold_start(state_dir: str | Path, store: str) -> dict:
    """Cold-start *state_dir* in a fresh interpreter; return its stats."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_root, env.get("PYTHONPATH", "")) if p
    )
    completed = subprocess.run(
        [
            sys.executable,
            "-c",
            "from repro.experiments.storage_scale import _cold_start_main; "
            "_cold_start_main()",
            str(state_dir),
            store,
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(completed.stdout.strip().splitlines()[-1])


def run_storage_scale(
    work_dir: str | Path, n_records: int, *, seed: int = 0
) -> dict:
    """Build both store kinds at *n_records* and cold-start each.

    Returns ``{"n_records": ..., "results": {kind: stats}}`` where the
    stats are the subprocess measurements plus the ingest/compact time.
    """
    results: dict[str, dict] = {}
    for store in STORE_KINDS:
        ingest_started = time.perf_counter()
        state_dir = build_state_dir(work_dir, n_records, seed=seed, store=store)
        ingest_s = time.perf_counter() - ingest_started
        stats = measure_cold_start(state_dir, store)
        stats["ingest_s"] = ingest_s
        stats["checkpoint_bytes"] = sum(
            p.stat().st_size
            for p in Path(state_dir).iterdir()
            if p.name.startswith(("checkpoint-", "columnar-"))
        )
        results[store] = stats
    baseline, columnar = results["memory"], results["columnar"]
    # Both cold starts restored identical state, whatever the timings.
    for key in ("entries", "checkpoint_entries", "n_components"):
        if baseline[key] != columnar[key]:
            raise AssertionError(
                f"cold-started state diverged on {key}: "
                f"{baseline[key]!r} != {columnar[key]!r}"
            )
    return {"n_records": n_records, "results": results}


def storage_report_rows(report: dict) -> list[dict]:
    rows = []
    for store, stats in report["results"].items():
        rows.append(
            {
                "store": store,
                "records": report["n_records"],
                "cold_start_s": round(stats["cold_start_s"], 3),
                "peak_rss_mb": round(stats["maxrss_kb"] / 1024, 1),
                "ckpt_mb": round(stats["checkpoint_bytes"] / 2**20, 1),
                "replayed": stats["entries_replayed"],
                "ingest_s": round(stats["ingest_s"], 1),
            }
        )
    return rows
