"""X8: answer safety under injected predicate faults (chaos sweep).

The resilience layer claims role-safe containment: a query run under an
:class:`~repro.core.resilience.ExecutionPolicy` with faulty predicates
must never *over-merge* (a failing sufficient predicate falls back to
False) and never *over-prune* the true answer (a failing necessary
predicate falls back to True; a compromised necessary keying stands
pruning down).  This sweep injects predicate exceptions at increasing
rates into the citation pipeline and measures both directions against
the fault-free run and the gold labels.
"""

from __future__ import annotations

from ..core.pruned_dedup import pruned_dedup
from ..core.records import GroupSet
from ..core.resilience import ExecutionPolicy
from ..datasets import author_idf, author_string_idf, generate_citations, suggest_min_idf
from ..predicates import citation_levels
from ..testing.chaos import FaultPlan, chaos_levels


def _partition(groups: GroupSet) -> dict[int, int]:
    """Map record id -> position of its group in *groups*."""
    assignment: dict[int, int] = {}
    for position, group in enumerate(groups):
        for record_id in group.member_ids:
            assignment[record_id] = position
    return assignment


def refines(groups: GroupSet, baseline: GroupSet) -> bool:
    """True when every group of *groups* sits inside one baseline group.

    This is the no-over-merge criterion: with sufficient-predicate
    faults falling back to False, the chaos run may merge *less* than
    the fault-free run but never across its group boundaries.
    """
    base = _partition(baseline)
    for group in groups:
        owners = {base[r] for r in group.member_ids if r in base}
        if len(owners) > 1:
            return False
    return True


def run_chaos_sweep(
    error_rates: tuple[float, ...] = (0.0, 0.1, 0.2, 0.4),
    n_records: int = 800,
    k: int = 5,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Sweep predicate-exception rates on the citation pruning pipeline.

    Every row compares a chaos run (both roles raising at *rate*, under
    a containment-only policy) against the fault-free run and the gold
    labels:

    * ``contained`` — containment events recorded by the run's counters
      (the injected faults that actually fired);
    * ``no_over_merge`` — the chaos run's groups refine the fault-free
      run's groups (role-safety of the sufficient fallback);
    * ``topk_recall`` — fraction of the true Top-K entities still alive
      in the retained groups (role-safety of the necessary fallback);
    * ``retained_pct`` — pruning effectiveness left at this fault rate.
    """
    dataset = generate_citations(n_records=n_records, seed=seed)
    idf = author_idf(dataset.store)
    levels = citation_levels(
        idf, suggest_min_idf(idf), anchor_idf=author_string_idf(dataset.store)
    )
    baseline = pruned_dedup(dataset.store, k, levels)
    true_topk = [entity for entity, _ in dataset.true_topk(k)]
    policy = ExecutionPolicy(on_error="degrade")

    rows: list[dict[str, object]] = []
    for rate in error_rates:
        plan = FaultPlan(seed=seed, error_rate=rate)
        faulty = chaos_levels(levels, plan, roles="both")
        result = pruned_dedup(dataset.store, k, faulty, policy=policy)
        surviving = {
            dataset.labels[record_id]
            for group in result.groups
            for record_id in group.member_ids
        }
        counters = result.counters
        rows.append(
            {
                "error_rate": rate,
                "contained": counters.total_contained if counters else 0,
                "no_over_merge": refines(result.groups, baseline.groups),
                "topk_recall": sum(e in surviving for e in true_topk)
                / len(true_topk),
                "retained_pct": result.stats[-1].n_prime_pct
                if result.stats
                else 100.0,
                "degraded": result.degraded,
            }
        )
    return rows


def chaos_checks(rows: list[dict[str, object]]) -> dict[str, bool]:
    """Role-safety claims for the chaos sweep."""
    ordered = sorted(rows, key=lambda r: float(r["error_rate"]))
    faulty_rows = [r for r in ordered if float(r["error_rate"]) > 0.0]
    return {
        "faults_actually_fired": all(
            int(r["contained"]) > 0 for r in faulty_rows
        ),
        "never_over_merges": all(bool(r["no_over_merge"]) for r in ordered),
        "topk_survives_all_rates": all(
            float(r["topk_recall"]) == 1.0 for r in ordered
        ),
        "containment_never_degrades_run": all(
            not bool(r["degraded"]) for r in ordered
        ),
    }
