"""Scaling behaviour of the pruning pipeline.

Not a paper figure, but the paper's central economic claim — "an order
of magnitude reduction in running time compared to deduplicating the
entire data first" — rests on how the retained fraction and runtime
scale with corpus size.  This driver sweeps the record count and
reports, per size: collapse %, retained % and wall-clock seconds for a
fixed small K.  Expected shape: retained % *falls* with scale (the
prunable tail grows faster than the Top-K head) while runtime grows
near-linearly (all stages are index-based).
"""

from __future__ import annotations

import time
from collections.abc import Callable

from ..core.pruned_dedup import pruned_dedup
from .harness import Pipeline, address_pipeline, citation_pipeline, student_pipeline

PIPELINE_MAKERS: dict[str, Callable[..., Pipeline]] = {
    "citations": lambda n, seed: citation_pipeline(
        n_records=n, seed=seed, with_scorer=False
    ),
    "students": lambda n, seed: student_pipeline(n_records=n, seed=seed),
    "addresses": lambda n, seed: address_pipeline(n_records=n, seed=seed),
}


def run_scaling_sweep(
    dataset: str = "students",
    sizes: tuple[int, ...] = (1000, 2000, 4000, 8000),
    k: int = 10,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Run the pruning pipeline at each size; return per-size rows."""
    maker = PIPELINE_MAKERS.get(dataset)
    if maker is None:
        raise ValueError(
            f"unknown dataset {dataset!r}; choose from {sorted(PIPELINE_MAKERS)}"
        )
    rows: list[dict[str, object]] = []
    for n in sizes:
        pipeline = maker(n, seed)
        start = time.perf_counter()
        result = pruned_dedup(pipeline.store, k, pipeline.levels)
        seconds = time.perf_counter() - start
        last = result.stats[-1]
        rows.append(
            {
                "n_records": n,
                "K": k,
                "collapse_pct": result.stats[0].n_pct,
                "retained_pct": last.n_prime_pct,
                "retained_groups": last.n_groups_after_prune,
                "seconds": seconds,
            }
        )
    return rows


def scaling_checks(rows: list[dict[str, object]]) -> dict[str, bool]:
    """Shape checks for the scaling sweep.

    * the retained *fraction* must not grow with corpus size (modulo a
      small tolerance for the discrete Top-K head);
    * the runtime growth exponent between the two largest sizes stays
      below 2 (gram-key blocking has a superlinear postings component,
      but it must not be worse than quadratic).
    """
    import math

    ordered = sorted(rows, key=lambda r: int(r["n_records"]))
    first, last = ordered[0], ordered[-1]
    mid = ordered[-2]
    size_ratio = int(last["n_records"]) / int(mid["n_records"])
    time_ratio = float(last["seconds"]) / max(float(mid["seconds"]), 1e-9)
    exponent = math.log(max(time_ratio, 1e-9)) / math.log(size_ratio)
    return {
        "retained_fraction_not_growing": float(last["retained_pct"])
        <= float(first["retained_pct"]) * 1.25 + 1.0,
        "subquadratic_runtime": exponent < 2.0,
    }
