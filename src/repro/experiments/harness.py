"""Shared experiment plumbing: datasets, predicate suites, trained scorers.

The benchmark drivers and example scripts all need the same setup —
generate a dataset, assemble its predicate levels, train the final
classifier on half the gold groups — so it lives here once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..core.records import RecordStore
from ..datasets import (
    author_idf,
    author_string_idf,
    generate_addresses,
    generate_citations,
    generate_students,
    sample_labeled_pairs,
    split_groups,
    suggest_min_idf,
)
from ..datasets.base import SyntheticDataset
from ..predicates import address_levels, citation_levels, student_levels
from ..predicates.base import PredicateLevel
from ..scoring.pairwise import CachedScorer, PairwiseScorer, train_scorer
from ..similarity.vectorize import (
    PairFeaturizer,
    address_featurizer,
    citation_featurizer,
    name_only_featurizer,
    restaurant_featurizer,
)

#: Benchmarks read the dataset scale from this environment variable so a
#: paper-scale run is one `REPRO_SCALE=240000 pytest benchmarks/` away.
SCALE_ENV_VAR = "REPRO_SCALE"
DEFAULT_SCALE = 6000


def benchmark_scale(default: int = DEFAULT_SCALE) -> int:
    """Return the record count benchmarks should generate."""
    value = os.environ.get(SCALE_ENV_VAR, "")
    return int(value) if value else default


@dataclass
class Pipeline:
    """Everything needed to answer queries over one dataset."""

    dataset: SyntheticDataset
    levels: list[PredicateLevel]
    scorer: PairwiseScorer | None = None
    featurizer: PairFeaturizer | None = None

    @property
    def store(self) -> RecordStore:
        return self.dataset.store


def citation_pipeline(
    n_records: int = DEFAULT_SCALE,
    seed: int = 0,
    with_scorer: bool = True,
) -> Pipeline:
    """Citation dataset + Section 6.1.1 predicates + trained P."""
    dataset = generate_citations(n_records=n_records, seed=seed)
    idf = author_idf(dataset.store)
    levels = citation_levels(
        idf, suggest_min_idf(idf), anchor_idf=author_string_idf(dataset.store)
    )
    scorer = None
    featurizer = citation_featurizer(idf)
    if with_scorer:
        scorer = _train(dataset, featurizer, levels, seed)
    return Pipeline(
        dataset=dataset, levels=levels, scorer=scorer, featurizer=featurizer
    )


def student_pipeline(n_records: int = DEFAULT_SCALE, seed: int = 0) -> Pipeline:
    """Student dataset + Section 6.1.2 predicates.

    The paper had no labeled training data here and "skip[s] the final
    clustering step"; the pipeline accordingly carries no scorer.
    """
    dataset = generate_students(n_records=n_records, seed=seed)
    return Pipeline(dataset=dataset, levels=student_levels())


def address_pipeline(
    n_records: int = DEFAULT_SCALE,
    seed: int = 0,
    with_scorer: bool = False,
) -> Pipeline:
    """Address dataset + Section 6.1.3 predicates (scorer optional)."""
    dataset = generate_addresses(n_records=n_records, seed=seed)
    levels = address_levels(dataset.store)
    scorer = None
    featurizer = address_featurizer()
    if with_scorer:
        scorer = _train(dataset, featurizer, levels, seed)
    return Pipeline(
        dataset=dataset, levels=levels, scorer=scorer, featurizer=featurizer
    )


def _train(
    dataset: SyntheticDataset,
    featurizer: PairFeaturizer,
    levels: list[PredicateLevel],
    seed: int,
    train_fraction: float = 0.5,
) -> PairwiseScorer:
    """Train the final classifier on *train_fraction* of the gold groups."""
    train_ids, _ = split_groups(dataset, train_fraction=train_fraction, seed=seed)
    pairs, labels = sample_labeled_pairs(
        dataset,
        record_ids=train_ids,
        candidate_predicate=levels[-1].necessary,
        seed=seed,
    )
    return CachedScorer(train_scorer(featurizer, pairs, labels))


def train_scorer_for(
    dataset: SyntheticDataset,
    kind: str,
    levels: list[PredicateLevel],
    seed: int = 0,
) -> PairwiseScorer:
    """Train a final-predicate scorer for a Figure-7 style sample.

    *kind* selects the feature set: ``"name"`` (Authors sample),
    ``"citation"``, ``"address"`` or ``"restaurant"``.
    """
    if kind == "name":
        featurizer = name_only_featurizer()
    elif kind == "citation":
        featurizer = citation_featurizer(author_idf(dataset.store))
    elif kind == "address":
        featurizer = address_featurizer()
    elif kind == "restaurant":
        featurizer = restaurant_featurizer()
    else:
        raise ValueError(f"unknown featurizer kind {kind!r}")
    return _train(dataset, featurizer, levels, seed)
