"""Figure 6: running time of PrunedDedup vs the full-dedup baselines.

The paper plots wall-clock time against K for four methods on a 45k
citation subset: None (Cartesian), Canopy, Canopy+Collapse, and the full
pruning pipeline.  We measure the same four, additionally recording how
many final-predicate pair evaluations each performs (the quantity the
times are made of).
"""

from __future__ import annotations

import time

from ..baselines.full_dedup import (
    canopy_collapse_pipeline,
    canopy_pipeline,
    none_pipeline,
)
from ..core.pruned_dedup import pruned_dedup
from ..core.topk import topk_count_query
from .harness import Pipeline

#: The K sweep of Figure 6.
PAPER_TIMING_K_VALUES = (1, 10, 100, 1000)


def run_timing_comparison(
    pipeline: Pipeline,
    k_values: tuple[int, ...] = PAPER_TIMING_K_VALUES,
    include_none: bool = False,
    none_cap: int = 3000,
) -> list[dict[str, object]]:
    """Time all methods for each K; return one row per (K, method).

    The Cartesian ``none`` baseline is quadratic, so it only runs when
    *include_none* is set and the store is at most *none_cap* records
    (the paper likewise ran it only on a subset).
    """
    if pipeline.scorer is None:
        raise ValueError("timing comparison needs a trained scorer")
    store = pipeline.store
    rows: list[dict[str, object]] = []

    def fresh_scorer():
        # Each measured run pays for its own P evaluations; a warm shared
        # cache would make whichever method runs first subsidize the rest.
        scorer = pipeline.scorer
        if hasattr(scorer, "fresh"):
            return scorer.fresh()
        return scorer

    for k in k_values:
        if k > len(store):
            continue
        if include_none and len(store) <= none_cap:
            t0 = time.perf_counter()
            outcome = none_pipeline(store, k, fresh_scorer())
            rows.append(
                _row(k, "none", time.perf_counter() - t0, outcome.n_pairs_scored)
            )

        t0 = time.perf_counter()
        outcome = canopy_pipeline(
            store, k, fresh_scorer(), pipeline.levels[-1].necessary
        )
        rows.append(
            _row(k, "canopy", time.perf_counter() - t0, outcome.n_pairs_scored)
        )

        t0 = time.perf_counter()
        outcome = canopy_collapse_pipeline(
            store,
            k,
            fresh_scorer(),
            pipeline.levels[-1].necessary,
            pipeline.levels[0].sufficient,
        )
        rows.append(
            _row(
                k,
                "canopy+collapse",
                time.perf_counter() - t0,
                outcome.n_pairs_scored,
            )
        )

        t0 = time.perf_counter()
        result = topk_count_query(
            store, k, pipeline.levels, fresh_scorer(), r=1
        )
        elapsed = time.perf_counter() - t0
        retained = (
            len(result.pruning.groups) if result.pruning is not None else 0
        )
        rows.append(_row(k, "pruned-dedup", elapsed, retained))
    return rows


def _row(k: int, method: str, seconds: float, pairs: int) -> dict[str, object]:
    return {"K": k, "method": method, "seconds": seconds, "work": pairs}


def run_pruning_only_timing(
    pipeline: Pipeline, k_values: tuple[int, ...] = PAPER_TIMING_K_VALUES
) -> list[dict[str, object]]:
    """Timing of the pruning pipeline alone (no scorer needed)."""
    rows = []
    for k in k_values:
        if k > len(pipeline.store):
            continue
        t0 = time.perf_counter()
        result = pruned_dedup(pipeline.store, k, pipeline.levels)
        rows.append(
            _row(
                k,
                "pruned-dedup(no-final)",
                time.perf_counter() - t0,
                len(result.groups),
            )
        )
    return rows


def timing_shape_checks(rows: list[dict[str, object]]) -> dict[str, bool]:
    """Figure 6's qualitative claims at small K.

    PrunedDedup beats Canopy+Collapse, which beats Canopy — both in time
    and in the amount of final-predicate work.
    """
    by_method: dict[str, dict[int, dict[str, object]]] = {}
    for row in rows:
        by_method.setdefault(str(row["method"]), {})[int(row["K"])] = row

    def seconds(method: str, k: int) -> float:
        return float(by_method[method][k]["seconds"])

    def work(method: str, k: int) -> float:
        return float(by_method[method][k]["work"])

    small_k = min(by_method["canopy"].keys())
    checks = {
        # Wall-clock comparisons carry ±20% tolerance (fixed costs and
        # scheduler noise dominate at small scales); the deterministic
        # "work" column is compared strictly.
        "pruned_beats_canopy_collapse": seconds("pruned-dedup", small_k)
        <= seconds("canopy+collapse", small_k) * 1.2,
        "pruned_does_far_less_work": work("pruned-dedup", small_k)
        <= work("canopy+collapse", small_k) / 5.0,
        "collapse_beats_canopy": seconds("canopy+collapse", small_k)
        <= seconds("canopy", small_k) * 1.2,
        "collapse_does_less_work": work("canopy+collapse", small_k)
        <= work("canopy", small_k),
    }
    if "none" in by_method:
        checks["canopy_beats_none"] = (
            seconds("canopy", small_k) <= seconds("none", small_k)
        )
        checks["canopy_does_less_work_than_none"] = (
            work("canopy", small_k) <= work("none", small_k)
        )
    return checks
