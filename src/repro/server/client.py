"""Tiny asyncio HTTP client for exercising the query service.

The load harness and the test suite need nothing more than "send one
JSON request, read one JSON response" against the loopback server —
this keeps them free of any HTTP dependency, mirroring the hand-rolled
server framing in :mod:`repro.server.http`.
"""

from __future__ import annotations

import asyncio
import json


class ServiceClient:
    """One keep-alive connection to a running service.

    Not task-safe: each concurrent client task should hold its own
    instance (exactly how the open-loop harness models independent
    callers).  Use as an async context manager or call :meth:`close`.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:
                pass
            self._reader = None
            self._writer = None

    async def _connect(self) -> None:
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict, dict]:
        """Send one request; returns ``(status, headers, parsed body)``.

        Retries once on a broken keep-alive connection (the server may
        have closed it between requests); any further failure raises.
        """
        payload = b"" if body is None else json.dumps(body).encode()
        for attempt in (0, 1):
            await self._connect()
            try:
                return await asyncio.wait_for(
                    self._roundtrip(method, path, payload), self.timeout
                )
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.IncompleteReadError,
            ):
                await self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    async def _roundtrip(
        self, method: str, path: str, payload: bytes
    ) -> tuple[int, dict, dict]:
        assert self._reader is not None and self._writer is not None
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"\r\n"
        ).encode("ascii")
        self._writer.write(head + payload)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionResetError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        content_type = headers.get("content-type", "")
        if "json" in content_type and raw:
            parsed = json.loads(raw.decode())
        else:
            parsed = {"text": raw.decode(errors="replace")}
        return status, headers, parsed

    # -- convenience verbs --------------------------------------------

    async def query(self, **payload) -> tuple[int, dict]:
        status, _, body = await self.request("POST", "/query", payload)
        return status, body

    async def insert(
        self, fields: dict, weight: float = 1.0
    ) -> tuple[int, dict]:
        status, _, body = await self.request(
            "POST", "/insert", {"fields": fields, "weight": weight}
        )
        return status, body

    async def drain(self) -> tuple[int, dict]:
        status, _, body = await self.request("POST", "/drain")
        return status, body

    async def get(self, path: str) -> tuple[int, dict]:
        status, _, body = await self.request("GET", path)
        return status, body
