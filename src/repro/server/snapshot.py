"""Snapshot-isolated read path: immutable engine generations for readers.

The query service runs one writer task and many concurrent readers.
The writer owns the mutable :class:`~repro.core.incremental.IncrementalTopK`
and, after each applied batch, freezes its state
(:meth:`~repro.core.incremental.IncrementalTopK.snapshot_state`) into an
:class:`EngineSnapshot` — records tuple plus copied closure membership,
nothing shared-mutable with the live engine.  The
:class:`SnapshotPublisher` then swaps a single generation pointer: a
reader grabs ``publisher.current`` exactly once per request and answers
entirely from that object, so a long query can never observe a torn
in-flight add or a mixed-generation index, no matter how many inserts
land while it runs.

Snapshots answer all three query verbs through the same machinery as
the engines (:func:`~repro.core.pruned_dedup.run_level_pipeline` for
counts on the maintained closure, the rank/threshold pipelines on the
frozen store), including :class:`~repro.core.resilience.ExecutionPolicy`
anytime degradation — the substrate the service's per-request deadlines
thread into.
"""

from __future__ import annotations

import math
import threading
from itertools import islice

from ..core.incremental import EngineSnapshotState
from ..core.pruned_dedup import PrunedDedupResult, run_level_pipeline
from ..core.rank_query import (
    RankQueryResult,
    thresholded_rank_query,
    topk_rank_query,
)
from ..core.records import Group, GroupSet, RecordStore, merge_groups
from ..core.resilience import ExecutionPolicy
from ..core.verification import VerificationContext


class EngineSnapshot:
    """One immutable, queryable generation of the stream engine.

    Construction copies nothing itself — the writer already copied the
    mutable parts into the :class:`EngineSnapshotState` — so publishing
    is cheap.  Queries build a fresh
    :class:`~repro.core.verification.VerificationContext` per call
    (readers run on worker threads; nothing here is shared-mutable
    between concurrent queries except the answer cache, which is
    lock-guarded).  Identical policy-free queries are cached per
    snapshot: the state can never change under it.

    The cache is **bounded** (``cache_limit`` distinct keys): a client
    sweeping ``k`` or ``min_weight`` across a long-lived snapshot must
    not grow server memory without limit, so the oldest entries are
    evicted FIFO — the same bounded-cache discipline as the engine's
    verdict cache.  Evictions are counted (:attr:`cache_evictions`) and
    published as ``repro_snapshot_cache_evictions_total`` when a
    metrics registry is attached.
    """

    def __init__(
        self,
        state: EngineSnapshotState,
        levels,
        *,
        prune_iterations: int = 2,
        cache_limit: int = 256,
        scorer=None,
        metrics=None,
    ):
        if cache_limit < 1:
            raise ValueError(f"cache_limit must be >= 1, got {cache_limit}")
        self._state = state
        self._levels = levels
        self._scorer = scorer
        self._prune_iterations = prune_iterations
        self._cache: dict[tuple, object] = {}
        self._cache_lock = threading.Lock()
        self._cache_limit = cache_limit
        self._cache_evictions = 0
        self._metrics = metrics

    @classmethod
    def freeze(
        cls,
        engine,
        *,
        prune_iterations: int = 2,
        cache_limit: int = 256,
        metrics=None,
    ) -> "EngineSnapshot":
        """Freeze *engine*'s current state (writer-side only — see
        :meth:`IncrementalTopK.snapshot_state`)."""
        return cls(
            engine.snapshot_state(),
            engine._levels,
            prune_iterations=prune_iterations,
            cache_limit=cache_limit,
            scorer=getattr(engine, "_scorer", None),
            metrics=metrics,
        )

    # -- identity ------------------------------------------------------

    @property
    def generation(self) -> int:
        """Engine version this snapshot reflects (monotone per insert)."""
        return self._state.generation

    @property
    def entries_applied(self) -> int:
        return self._state.entries_applied

    @property
    def n_records(self) -> int:
        return len(self._state.records)

    @property
    def n_components(self) -> int:
        return len(self._state.components)

    @property
    def dead_letters(self) -> int:
        return self._state.dead_letters

    @property
    def supports_interval(self) -> bool:
        """True when the engine carried a pairwise scorer at freeze time
        (interval queries need one to score dedup worlds)."""
        return self._scorer is not None

    def record_label(self, record_id: int, field: str) -> str:
        """Field value of one record (for response labelling)."""
        return self._state.records[record_id][field]

    def consistency_problems(self) -> list[str]:
        """Structural self-check (the atomic-publication property).

        A correctly published snapshot's components partition exactly
        its own record ids — a mixed-generation index (members from a
        newer record set, or records missing from the closure) shows up
        here immediately.  Used by the isolation property suite and the
        soak harness; cheap (O(n)).
        """
        problems: list[str] = []
        n = len(self._state.records)
        seen: set[int] = set()
        for members in self._state.components:
            for member in members:
                if not 0 <= member < n:
                    problems.append(
                        f"component member {member} outside record range "
                        f"0..{n - 1}"
                    )
                elif member in seen:
                    problems.append(f"record {member} in two components")
                seen.add(member)
        if len(seen) != n:
            problems.append(
                f"components cover {len(seen)} records but the snapshot "
                f"holds {n}"
            )
        for record_id, record in enumerate(self._state.records):
            if record.record_id != record_id:
                problems.append(
                    f"record at position {record_id} carries id "
                    f"{record.record_id}"
                )
        return problems

    # -- queries -------------------------------------------------------

    def _collapsed_groups(self) -> GroupSet:
        """A fresh GroupSet of the frozen closure (per call — the level
        pipeline consumes its input)."""
        store = RecordStore(list(self._state.records))
        groups = [
            merge_groups(
                store, [Group.singleton(0, store[m]) for m in members]
            )
            for members in self._state.components
        ]
        return GroupSet(store=store, groups=groups)

    @property
    def cache_evictions(self) -> int:
        """Answer-cache entries evicted over this snapshot's lifetime."""
        with self._cache_lock:
            return self._cache_evictions

    @property
    def cache_size(self) -> int:
        with self._cache_lock:
            return len(self._cache)

    def _cached(self, key: tuple, compute):
        with self._cache_lock:
            hit = self._cache.get(key)
        if hit is not None:
            return hit
        result = compute()
        evicted = 0
        with self._cache_lock:
            self._cache.setdefault(key, result)
            excess = len(self._cache) - self._cache_limit
            if excess > 0:
                # dicts preserve insertion order, so the leading keys
                # are the oldest answers — evict those first.
                for oldest in list(islice(iter(self._cache), excess)):
                    del self._cache[oldest]
                self._cache_evictions += excess
                evicted = excess
        if evicted and self._metrics is not None:
            self._metrics.counter(
                "repro_snapshot_cache_evictions_total"
            ).inc(evicted)
        return result

    def query_topk(
        self,
        k: int,
        policy: ExecutionPolicy | None = None,
        workers: int = 1,
        metrics=None,
    ) -> PrunedDedupResult:
        """Top-K count query on the frozen closure (mirrors
        :meth:`IncrementalTopK.query`, minus the live-state coupling)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")

        def compute() -> PrunedDedupResult:
            context = VerificationContext(metrics=metrics)
            with context.span("query", kind="server-topk", k=k):
                before_run = context.counters.snapshot()
                with context.span("collapse"):
                    with context.stage("collapse"):
                        groups = self._collapsed_groups()
                return run_level_pipeline(
                    groups,
                    k,
                    self._levels,
                    context=context,
                    prune_iterations=self._prune_iterations,
                    policy=policy,
                    skip_first_collapse=True,
                    n_starting_records=self.n_records,
                    before_run=before_run,
                    workers=workers,
                )

        if policy is None and workers == 1:
            return self._cached(("topk", k), compute)
        return compute()

    def query_interval(
        self,
        k: int,
        r: int = 8,
        min_probability: float = 0.0,
        policy: ExecutionPolicy | None = None,
        workers: int = 1,
        metrics=None,
    ):
        """Interval-semantics Top-K query on the frozen closure.

        Enumerates the *r* highest-scoring dedup worlds over the pruned
        state and returns an
        :class:`~repro.uncertainty.IntervalQueryResult` — per-entity
        count intervals and top-K membership probabilities.  Requires
        the snapshot to carry the engine's pairwise scorer.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if self._scorer is None:
            raise ValueError(
                "interval queries need a pairwise scorer: construct the "
                "engine (and so its snapshots) with scorer=..."
            )

        def compute():
            from ..uncertainty.query import (
                interval_from_pruning,
                publish_interval_metrics,
            )

            context = VerificationContext(metrics=metrics)
            with context.span("query", kind="server-interval", k=k, r=r):
                before_run = context.counters.snapshot()
                state = (
                    policy.start(context.counters)
                    if policy is not None
                    else None
                )
                with context.span("collapse"):
                    with context.stage("collapse"):
                        groups = self._collapsed_groups()
                pruning = run_level_pipeline(
                    groups,
                    k,
                    self._levels,
                    context=context,
                    prune_iterations=self._prune_iterations,
                    execution_state=state,
                    skip_first_collapse=True,
                    n_starting_records=self.n_records,
                    before_run=before_run,
                    workers=workers,
                )
                result = interval_from_pruning(
                    pruning,
                    k,
                    self._scorer,
                    self._levels[-1].necessary,
                    r=r,
                    min_probability=min_probability,
                    context=context,
                    state=state,
                )
            if context.metrics.enabled:
                publish_interval_metrics(context, result, None)
            return result

        if policy is None and workers == 1:
            # min_probability + 0.0 canonicalises -0.0 (see
            # query_threshold).
            return self._cached(
                ("interval", k, r, min_probability + 0.0), compute
            )
        return compute()

    def query_rank(
        self,
        k: int,
        policy: ExecutionPolicy | None = None,
        workers: int = 1,
        metrics=None,
    ) -> RankQueryResult:
        """Top-K rank query over the frozen record store."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")

        def compute() -> RankQueryResult:
            store = RecordStore(list(self._state.records))
            context = VerificationContext(metrics=metrics)
            return topk_rank_query(
                store,
                k,
                self._levels,
                prune_iterations=self._prune_iterations,
                context=context,
                policy=policy,
                workers=workers,
            )

        if policy is None and workers == 1:
            return self._cached(("rank", k), compute)
        return compute()

    def query_threshold(
        self,
        min_weight: float,
        policy: ExecutionPolicy | None = None,
        workers: int = 1,
        metrics=None,
    ) -> RankQueryResult:
        """Thresholded rank query over the frozen record store.

        Rejects non-finite thresholds up front (the HTTP layer already
        400s them; this guards embedded callers too): a NaN threshold
        would cache a dead entry under a key that can never hit again
        (``NaN != NaN``), and infinities answer nothing useful.  The
        cache key canonicalises the sign of zero — ``-0.0 == 0.0``
        answers identically, so the two must share one entry rather
        than occupying two cache slots for one answer.
        """
        if not math.isfinite(min_weight):
            raise ValueError(
                f"min_weight must be finite, got {min_weight!r}"
            )

        def compute() -> RankQueryResult:
            store = RecordStore(list(self._state.records))
            context = VerificationContext(metrics=metrics)
            return thresholded_rank_query(
                store,
                min_weight,
                self._levels,
                prune_iterations=self._prune_iterations,
                context=context,
                policy=policy,
                workers=workers,
            )

        if policy is None and workers == 1:
            # min_weight + 0.0 maps -0.0 to +0.0 (all other finite
            # floats are unchanged), so both spellings of zero share
            # one cache slot.
            return self._cached(("threshold", min_weight + 0.0), compute)
        return compute()


class SnapshotPublisher:
    """The atomic generation pointer readers dereference once per request.

    ``publish`` swaps one attribute (atomic under the GIL, and in the
    service called only from the event loop); ``current`` hands back
    whole snapshots — there is no window in which a reader can see half
    of one generation and half of another.  Epochs count publications
    (distinct from the engine generation, which counts inserts).
    """

    def __init__(self) -> None:
        self._current: EngineSnapshot | None = None
        self._epoch = 0

    @property
    def current(self) -> EngineSnapshot | None:
        """The newest published snapshot (None before the first)."""
        return self._current

    @property
    def epoch(self) -> int:
        """Number of publications so far."""
        return self._epoch

    def publish(self, snapshot: EngineSnapshot) -> int:
        """Make *snapshot* the current generation; returns its epoch.

        In-flight readers keep the snapshot they already dereferenced;
        the old generation is garbage-collected once the last of them
        finishes.
        """
        self._epoch += 1
        self._current = snapshot
        return self._epoch
