"""The always-on query service: one writer, many snapshot readers.

:class:`QueryService` is the transport-agnostic core of the server — the
HTTP layer (:mod:`repro.server.http`) only parses frames and calls the
``handle_*`` coroutines here.  The design is a single-writer/multi-reader
split over the warm incremental engine:

* **Writer** — exactly one task owns the mutable
  :class:`~repro.core.incremental.IncrementalTopK`.  It drains admitted
  inserts in batches, applies them through the normal WAL path, runs
  periodic checkpoints, then freezes and publishes a fresh
  :class:`~repro.server.snapshot.EngineSnapshot`.  Apply work runs on a
  dedicated single-thread executor, so the event loop keeps answering
  probes while fsync stalls.
* **Readers** — queries dereference the published snapshot once and run
  on a bounded reader pool under a per-request
  :class:`~repro.core.resilience.ExecutionPolicy` deadline: an admitted
  query that turns out slow returns an explicitly ``degraded`` anytime
  answer instead of timing out opaquely.
* **Admission** — every request passes the
  :class:`~repro.server.admission.AdmissionController` before any work
  starts; the overloaded service sheds with 429 + Retry-After and
  counts every shed.  The SLO contract: every request resolves as
  success, explicitly degraded, or shed — zero hangs, zero silent drops.
* **Supervision** — a crashed writer task is restarted under
  :class:`~repro.core.retry.RetryPolicy` backoff while readers keep
  serving the last published snapshot; after ``max_attempts``
  consecutive failures inserts are refused (503) until a batch
  succeeds again.
* **Drain** — :meth:`QueryService.drain` (wired to SIGTERM by the CLI)
  stops admission, applies the already-accepted insert queue, waits for
  in-flight readers, checkpoints, and closes the WAL — after which a
  restart recovers bit-identical state.
"""

from __future__ import annotations

import asyncio
import contextlib
import math
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..core.health import HealthCheck, HealthMonitor
from ..core.resilience import ExecutionPolicy
from ..core.retry import RetryPolicy
from .admission import (
    CLASS_INSERT,
    CLASS_QUERY,
    AdmissionConfig,
    AdmissionController,
    SHED_DRAINING,
    estimate_query_cost,
)
from .snapshot import EngineSnapshot, SnapshotPublisher

#: Service lifecycle states.
STATE_STARTING = "starting"
STATE_READY = "ready"
STATE_DRAINING = "draining"
STATE_STOPPED = "stopped"

#: Query kinds the service answers.
QUERY_KINDS = ("topk", "rank", "threshold", "interval")

#: Request outcomes (``repro_requests_total{verb,outcome}`` label values).
OUTCOME_OK = "ok"
OUTCOME_DEGRADED = "degraded"
OUTCOME_QUARANTINED = "quarantined"
OUTCOME_SHED = "shed"
OUTCOME_UNAVAILABLE = "unavailable"
OUTCOME_INVALID = "invalid"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_ERROR = "error"


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs of one service instance.

    Attributes:
        host/port: Bind address for the HTTP layer (port 0 = ephemeral).
        label_field: Record field used to label answer groups in
            responses (None = ids only).
        admission: Capacity contract (queue depths, deadlines, cost).
        prune_iterations: Upper-bound refinement passes per query.
        snapshot_cache_limit: Distinct cached answers per snapshot; the
            oldest are evicted FIFO past this bound (a parameter sweep
            must not grow server memory without limit).
        workers: Worker processes per query (sharded pipeline); keep 1
            unless the host has cores to spare — reader threads already
            provide request-level parallelism.
        max_insert_batch: Inserts the writer applies per wakeup before
            publishing a snapshot (larger = fewer publications, longer
            reader staleness).
        checkpoint_every: Checkpoint after this many applied entries
            (0 = only on drain; requires a durable engine).
        checkpoint_on_drain: Snapshot state as part of graceful drain.
        drain_grace_seconds: Budget for the whole drain sequence; work
            still pending after it is abandoned (and counted).
        request_hard_timeout_seconds: Last-resort per-request ceiling —
            cooperative deadlines should always fire first; this bound
            guarantees "zero hangs" even against a wedged reader thread.
        writer_retry: Backoff schedule for writer restarts; its
            ``max_attempts`` is also the consecutive-failure threshold
            past which inserts are refused.
        on_predicate_error: Containment mode stamped on the base query
            policy (``"degrade"`` or ``"raise"``).
    """

    host: str = "127.0.0.1"
    port: int = 0
    label_field: str | None = None
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    prune_iterations: int = 2
    snapshot_cache_limit: int = 256
    workers: int = 1
    max_insert_batch: int = 64
    checkpoint_every: int = 0
    checkpoint_on_drain: bool = True
    drain_grace_seconds: float = 30.0
    request_hard_timeout_seconds: float = 120.0
    writer_retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=5, base_delay_seconds=0.05, max_delay_seconds=2.0
        )
    )
    on_predicate_error: str = "degrade"


@dataclass
class ServiceStats:
    """Monotone counters surfaced by ``/stats`` and the soak harness."""

    requests: dict = field(default_factory=dict)  # "verb.outcome" -> count
    snapshots_published: int = 0
    checkpoints_written: int = 0
    checkpoint_failures: int = 0
    writer_restarts: int = 0
    inserts_applied: int = 0

    def count(self, verb: str, outcome: str) -> None:
        key = f"{verb}.{outcome}"
        self.requests[key] = self.requests.get(key, 0) + 1

    def total(self, outcome: str | None = None) -> int:
        if outcome is None:
            return sum(self.requests.values())
        return sum(
            count
            for key, count in self.requests.items()
            if key.endswith(f".{outcome}")
        )

    def as_dict(self) -> dict:
        return {
            "requests": dict(sorted(self.requests.items())),
            "snapshots_published": self.snapshots_published,
            "checkpoints_written": self.checkpoints_written,
            "checkpoint_failures": self.checkpoint_failures,
            "writer_restarts": self.writer_restarts,
            "inserts_applied": self.inserts_applied,
        }


class _InsertItem:
    """One admitted insert waiting for the writer."""

    __slots__ = ("fields", "weight", "future")

    def __init__(self, fields: dict, weight: float, future: asyncio.Future):
        self.fields = fields
        self.weight = weight
        self.future = future


class QueryService:
    """See the module docstring for the architecture.

    Args:
        engine: A ready :class:`~repro.core.incremental.IncrementalTopK`,
            or None with *loader* — a callable building/restoring the
            engine, run off-loop during :meth:`start` so readiness
            probes answer 503 while a long WAL replay runs.
        config: :class:`ServerConfig`.
        metrics: Optional :class:`~repro.observability.MetricsRegistry`.
        monitor: Optional :class:`~repro.core.health.HealthMonitor`;
            one is built over the engine (with the service's own checks
            registered) when omitted.
    """

    def __init__(
        self,
        engine=None,
        *,
        loader=None,
        config: ServerConfig | None = None,
        metrics=None,
        monitor: HealthMonitor | None = None,
    ):
        if engine is None and loader is None:
            raise ValueError("need an engine or a loader")
        self.engine = engine
        self._loader = loader
        self.config = config or ServerConfig()
        self.metrics = metrics
        self.monitor = monitor
        self.publisher = SnapshotPublisher()
        self.admission = AdmissionController(self.config.admission, metrics)
        self.stats = ServiceStats()
        self._state = STATE_STARTING
        self._started_at = time.monotonic()
        self._base_policy = ExecutionPolicy(
            on_error=self.config.on_predicate_error
        )
        self._insert_queue: asyncio.Queue = asyncio.Queue()
        self._query_slots = asyncio.Semaphore(
            self.config.admission.max_concurrent_queries
        )
        self._writer_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-writer"
        )
        self._query_executor = ThreadPoolExecutor(
            max_workers=self.config.admission.max_concurrent_queries,
            thread_name_prefix="repro-reader",
        )
        self._supervisor_task: asyncio.Task | None = None
        self._writer_task: asyncio.Task | None = None
        self._writer_consecutive_failures = 0
        self._last_writer_error: str | None = None
        self._last_checkpoint_entries = 0
        self._drain_started = False
        self._drained = asyncio.Event()
        self._drain_report: dict | None = None
        if metrics is not None and getattr(metrics, "enabled", False):
            metrics.describe(
                "repro_requests_total", "Service requests by verb and outcome"
            )
            metrics.describe(
                "repro_request_seconds", "Request wall time by verb"
            )
            metrics.describe(
                "repro_snapshot_generation",
                "Engine generation of the published snapshot",
            )
            metrics.describe(
                "repro_writer_restarts_total",
                "Writer task crashes recovered by the supervisor",
            )
            metrics.describe(
                "repro_snapshot_cache_evictions_total",
                "Snapshot answer-cache entries evicted (FIFO bound)",
            )

    # -- lifecycle -----------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def draining(self) -> bool:
        return self._drain_started

    async def start(self) -> None:
        """Load the engine (off-loop), publish generation 0, arm the
        writer supervisor, and become ready."""
        loop = asyncio.get_running_loop()
        if self.engine is None:
            self.engine = await loop.run_in_executor(
                self._writer_executor, self._loader
            )
        if self.monitor is None:
            self.monitor = HealthMonitor(
                engine=self.engine, extra_checks=[self.health_checks]
            )
        self._last_checkpoint_entries = self.engine.entries_applied
        snapshot = await loop.run_in_executor(
            self._writer_executor, self._freeze
        )
        self._publish(snapshot)
        if self._drain_started:
            # SIGTERM landed during the load — never serve, close clean.
            await loop.run_in_executor(self._writer_executor, self.engine.close)
            self._state = STATE_STOPPED
            self._drained.set()
            return
        self._supervisor_task = asyncio.create_task(self._supervisor_loop())
        self._state = STATE_READY

    def _freeze(self) -> EngineSnapshot:
        return EngineSnapshot.freeze(
            self.engine,
            prune_iterations=self.config.prune_iterations,
            cache_limit=self.config.snapshot_cache_limit,
            metrics=self.metrics,
        )

    def _publish(self, snapshot: EngineSnapshot) -> None:
        self.publisher.publish(snapshot)
        self.stats.snapshots_published += 1
        metrics = self.metrics
        if metrics is not None and getattr(metrics, "enabled", False):
            metrics.gauge("repro_snapshot_generation").set(
                float(snapshot.generation)
            )

    # -- writer + supervisor -------------------------------------------

    def _apply_batch(self, items: list[_InsertItem]):
        """Writer-thread body: apply a batch, maybe checkpoint, freeze."""
        results = []
        for item in items:
            record_id = self.engine.add(item.fields, item.weight)
            results.append(
                {
                    "record_id": record_id,
                    "quarantined": record_id < 0,
                    "entries_applied": self.engine.entries_applied,
                }
            )
        checkpointed = False
        if (
            self.config.checkpoint_every
            and self.engine.durable
            and self.engine.entries_applied - self._last_checkpoint_entries
            >= self.config.checkpoint_every
        ):
            # A failed periodic checkpoint keeps the prior one and all
            # WAL — degrade the signal, never the admitted inserts.
            try:
                self.engine.checkpoint()
                self._last_checkpoint_entries = self.engine.entries_applied
                checkpointed = True
            except Exception:
                self.stats.checkpoint_failures += 1
        return results, self._freeze(), checkpointed

    async def _writer_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self._insert_queue.get()
            batch = [item]
            while len(batch) < self.config.max_insert_batch:
                try:
                    batch.append(self._insert_queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                results, snapshot, checkpointed = await loop.run_in_executor(
                    self._writer_executor, self._apply_batch, batch
                )
            except Exception as exc:
                # The batch failed before its effects were published:
                # resolve every waiter explicitly (a crash must never
                # hang a client), then crash into the supervisor.
                for waiter in batch:
                    if not waiter.future.done():
                        waiter.future.set_result(
                            {"error": f"writer crashed: {exc!r}"}
                        )
                raise
            finally:
                for _ in batch:
                    self._insert_queue.task_done()
                    self.admission.release(CLASS_INSERT)
            self._publish(snapshot)
            if checkpointed:
                self.stats.checkpoints_written += 1
            self.stats.inserts_applied += len(batch)
            self._writer_consecutive_failures = 0
            for waiter, result in zip(batch, results):
                if not waiter.future.done():
                    waiter.future.set_result(result)

    async def _supervisor_loop(self) -> None:
        """Keep the writer alive; readers serve through every restart."""
        while True:
            self._writer_task = asyncio.create_task(self._writer_loop())
            try:
                await self._writer_task
                return
            except asyncio.CancelledError:
                self._writer_task.cancel()
                with contextlib.suppress(BaseException):
                    await self._writer_task
                raise
            except Exception as exc:
                self._writer_consecutive_failures += 1
                self.stats.writer_restarts += 1
                self._last_writer_error = repr(exc)
                metrics = self.metrics
                if metrics is not None and getattr(metrics, "enabled", False):
                    metrics.counter("repro_writer_restarts_total").inc()
                delay = self.config.writer_retry.backoff_seconds(
                    min(self._writer_consecutive_failures, 10),
                    key="server.writer",
                )
                await asyncio.sleep(delay)

    @property
    def writer_available(self) -> bool:
        """False once consecutive writer crashes hit the retry budget —
        inserts are then refused until a batch succeeds again."""
        return (
            self._writer_consecutive_failures
            < self.config.writer_retry.max_attempts
        )

    # -- request handling ----------------------------------------------

    def _finish(
        self,
        verb: str,
        started: float,
        status: int,
        body: dict,
        outcome: str,
    ) -> tuple[int, dict]:
        self.stats.count(verb, outcome)
        metrics = self.metrics
        if metrics is not None and getattr(metrics, "enabled", False):
            metrics.counter(
                "repro_requests_total", verb=verb, outcome=outcome
            ).inc()
            metrics.histogram("repro_request_seconds", verb=verb).observe(
                time.monotonic() - started
            )
        body.setdefault("outcome", outcome)
        return status, body

    def _unavailable(self, verb: str, started: float) -> tuple[int, dict]:
        reason = SHED_DRAINING if self._drain_started else self._state
        return self._finish(
            verb,
            started,
            503,
            {"error": f"service unavailable ({reason})", "state": self._state},
            OUTCOME_UNAVAILABLE,
        )

    async def handle_query(self, payload: dict) -> tuple[int, dict]:
        """Answer one query request; returns ``(http_status, body)``."""
        started = time.monotonic()
        kind = payload.get("kind", "topk")
        verb = kind if kind in QUERY_KINDS else "query"
        if kind not in QUERY_KINDS:
            return self._finish(
                verb,
                started,
                400,
                {"error": f"unknown query kind {kind!r}"},
                OUTCOME_INVALID,
            )
        if self._state != STATE_READY:
            return self._unavailable(verb, started)
        snapshot = self.publisher.current
        if snapshot is None:
            return self._unavailable(verb, started)
        if kind == "interval" and not snapshot.supports_interval:
            return self._finish(
                verb,
                started,
                400,
                {
                    "error": "interval queries need a pairwise scorer: "
                    "construct the engine with scorer=..."
                },
                OUTCOME_INVALID,
            )
        try:
            k, min_weight, worlds, min_probability = self._query_params(
                kind, payload
            )
            deadline_raw = payload.get("deadline_seconds")
            if deadline_raw is not None:
                deadline_raw = float(deadline_raw)
                if not math.isfinite(deadline_raw) or deadline_raw <= 0:
                    raise ValueError(
                        f"deadline_seconds must be a positive finite "
                        f"number, got {deadline_raw}"
                    )
        except (TypeError, ValueError) as exc:
            return self._finish(
                verb, started, 400, {"error": str(exc)}, OUTCOME_INVALID
            )
        deadline = self.config.admission.clamp_deadline(deadline_raw)
        cost = estimate_query_cost(
            kind, snapshot.n_records, self.config.admission, worlds=worlds
        )
        decision = self.admission.try_admit(CLASS_QUERY, cost)
        if not decision.admitted:
            return self._finish(
                verb,
                started,
                429,
                {
                    "error": "request shed",
                    "reason": decision.reason,
                    "retry_after_seconds": decision.retry_after_seconds,
                },
                OUTCOME_SHED,
            )
        loop = asyncio.get_running_loop()
        try:
            async with self._query_slots:
                # Queue wait counts against the request's own deadline;
                # an admitted-but-slow query degrades explicitly.
                remaining = max(
                    0.001, deadline - (time.monotonic() - started)
                )
                policy = self._base_policy.with_deadline(remaining)
                if kind == "topk":
                    run = lambda: snapshot.query_topk(  # noqa: E731
                        k,
                        policy=policy,
                        workers=self.config.workers,
                        metrics=self.metrics,
                    )
                elif kind == "interval":
                    run = lambda: snapshot.query_interval(  # noqa: E731
                        k,
                        r=worlds,
                        min_probability=min_probability,
                        policy=policy,
                        workers=self.config.workers,
                        metrics=self.metrics,
                    )
                elif kind == "rank":
                    run = lambda: snapshot.query_rank(  # noqa: E731
                        k,
                        policy=policy,
                        workers=self.config.workers,
                        metrics=self.metrics,
                    )
                else:
                    run = lambda: snapshot.query_threshold(  # noqa: E731
                        min_weight,
                        policy=policy,
                        workers=self.config.workers,
                        metrics=self.metrics,
                    )
                result = await asyncio.wait_for(
                    loop.run_in_executor(self._query_executor, run),
                    timeout=self.config.request_hard_timeout_seconds,
                )
        except asyncio.TimeoutError:
            return self._finish(
                verb,
                started,
                500,
                {"error": "request exceeded the hard timeout"},
                OUTCOME_TIMEOUT,
            )
        except Exception as exc:
            return self._finish(
                verb, started, 500, {"error": repr(exc)}, OUTCOME_ERROR
            )
        finally:
            self.admission.release(CLASS_QUERY)
        body = self._serialize_result(kind, snapshot, result, k)
        body["elapsed_seconds"] = time.monotonic() - started
        outcome = OUTCOME_DEGRADED if result.degraded else OUTCOME_OK
        return self._finish(verb, started, 200, body, outcome)

    @staticmethod
    def _query_params(kind: str, payload: dict) -> tuple[int, float, int, float]:
        k = 10
        min_weight = 0.0
        worlds = 1
        min_probability = 0.0
        if kind in ("topk", "rank", "interval"):
            k = payload.get("k", 10)
            if not isinstance(k, int) or isinstance(k, bool) or k < 1:
                raise ValueError(f"k must be a positive integer, got {k!r}")
        else:
            if "min_weight" not in payload:
                raise ValueError("threshold queries need min_weight")
            min_weight = float(payload["min_weight"])
            if not math.isfinite(min_weight):
                raise ValueError("min_weight must be finite")
        if kind == "interval":
            worlds = payload.get("worlds", 8)
            if (
                not isinstance(worlds, int)
                or isinstance(worlds, bool)
                or worlds < 1
            ):
                raise ValueError(
                    f"worlds must be a positive integer, got {worlds!r}"
                )
            min_probability = float(payload.get("min_probability", 0.0))
            if not math.isfinite(min_probability) or not (
                0.0 <= min_probability <= 1.0
            ):
                raise ValueError(
                    f"min_probability must be in [0, 1], got {min_probability!r}"
                )
        return k, min_weight, worlds, min_probability

    def _serialize_result(
        self, kind: str, snapshot: EngineSnapshot, result, k: int
    ) -> dict:
        label_field = self.config.label_field

        def label(record_id: int):
            if label_field is None:
                return None
            return snapshot.record_label(record_id, label_field)

        body = {
            "kind": kind,
            "generation": snapshot.generation,
            "entries_applied": snapshot.entries_applied,
            "degraded": result.degraded,
            "degraded_reason": result.degraded_reason,
        }
        if kind == "topk":
            groups = sorted(
                result.groups,
                key=lambda g: (-g.weight, g.representative_id),
            )[:k]
            body["groups"] = [
                {
                    "weight": group.weight,
                    "size": len(group.member_ids),
                    "representative_id": group.representative_id,
                    "label": label(group.representative_id),
                }
                for group in groups
            ]
        elif kind == "interval":
            body["worlds_enumerated"] = result.worlds_enumerated
            body["exact"] = result.exact
            body["entities"] = [
                {
                    "count_lo": entity.count_lo,
                    "count_hi": entity.count_hi,
                    "expected_count": entity.expected_count,
                    "membership_probability": entity.membership_probability,
                    "representative_id": entity.representative_id,
                    "label": label(entity.representative_id),
                }
                for entity in result.entities
            ]
        else:
            ranking = result.ranking
            if kind == "rank":
                ranking = ranking[:k]
            body["ranking"] = [
                {
                    "weight": entry.weight,
                    "upper_bound": entry.upper_bound,
                    "resolved": entry.resolved,
                    "representative_id": entry.representative_id,
                    "label": label(entry.representative_id),
                }
                for entry in ranking
            ]
            if kind == "threshold":
                body["certain"] = result.certain
        return body

    async def handle_insert(self, payload: dict) -> tuple[int, dict]:
        """Accept one insert; resolves once the writer applied it."""
        started = time.monotonic()
        verb = "insert"
        if self._state != STATE_READY:
            return self._unavailable(verb, started)
        if not self.writer_available:
            return self._finish(
                verb,
                started,
                503,
                {
                    "error": "writer unavailable "
                    f"(last: {self._last_writer_error})",
                    "state": self._state,
                },
                OUTCOME_UNAVAILABLE,
            )
        fields = payload.get("fields")
        if not isinstance(fields, dict) or not all(
            isinstance(key, str) and isinstance(value, str)
            for key, value in fields.items()
        ):
            return self._finish(
                verb,
                started,
                400,
                {"error": "fields must be a string-to-string object"},
                OUTCOME_INVALID,
            )
        try:
            weight = float(payload.get("weight", 1.0))
            if not math.isfinite(weight):
                raise ValueError
        except (TypeError, ValueError):
            return self._finish(
                verb,
                started,
                400,
                {"error": "weight must be a finite number"},
                OUTCOME_INVALID,
            )
        decision = self.admission.try_admit(CLASS_INSERT)
        if not decision.admitted:
            return self._finish(
                verb,
                started,
                429,
                {
                    "error": "request shed",
                    "reason": decision.reason,
                    "retry_after_seconds": decision.retry_after_seconds,
                },
                OUTCOME_SHED,
            )
        future = asyncio.get_running_loop().create_future()
        self._insert_queue.put_nowait(_InsertItem(dict(fields), weight, future))
        try:
            result = await asyncio.wait_for(
                future, timeout=self.config.request_hard_timeout_seconds
            )
        except asyncio.TimeoutError:
            return self._finish(
                verb,
                started,
                500,
                {"error": "insert exceeded the hard timeout"},
                OUTCOME_TIMEOUT,
            )
        if "error" in result:
            return self._finish(verb, started, 500, result, OUTCOME_ERROR)
        outcome = (
            OUTCOME_QUARANTINED if result["quarantined"] else OUTCOME_OK
        )
        return self._finish(verb, started, 200, result, outcome)

    # -- health --------------------------------------------------------

    def health_checks(self) -> list[HealthCheck]:
        """Service-level checks contributed to the HealthMonitor."""
        return [
            HealthCheck(
                name="server.state",
                ok=self._state == STATE_READY,
                detail=self._state,
            ),
            HealthCheck(
                name="server.writer",
                ok=self._writer_consecutive_failures == 0,
                detail=(
                    f"{self.stats.writer_restarts} restart(s), "
                    f"{self._writer_consecutive_failures} consecutive "
                    f"failure(s)"
                    + (
                        f", last: {self._last_writer_error}"
                        if self._last_writer_error
                        else ""
                    )
                ),
            ),
            HealthCheck(
                name="server.admission.query",
                ok=self.admission.pending(CLASS_QUERY)
                < self.config.admission.max_pending_queries,
                detail=(
                    f"{self.admission.pending(CLASS_QUERY)}/"
                    f"{self.config.admission.max_pending_queries} pending"
                ),
            ),
            HealthCheck(
                name="server.admission.insert",
                ok=self.admission.pending(CLASS_INSERT)
                < self.config.admission.max_pending_inserts,
                detail=(
                    f"{self.admission.pending(CLASS_INSERT)}/"
                    f"{self.config.admission.max_pending_inserts} pending"
                ),
            ),
        ]

    def readiness(self) -> tuple[bool, dict]:
        """Readiness verdict + machine-readable detail.

        Not ready while starting (WAL replay runs inside
        :meth:`start`), while draining, while journaling is suspended
        (``durability_degraded`` — accepting writes that cannot be made
        durable is a silent-loss risk), or when the
        :class:`~repro.core.health.HealthMonitor` itself clears
        readiness (failed audit, critical service check).
        """
        problems: list[str] = []
        if self._state != STATE_READY:
            problems.append(f"state={self._state}")
        if self.publisher.current is None:
            problems.append("no published snapshot")
        engine = self.engine
        if engine is not None and engine.durability_degraded:
            problems.append("durability degraded (journaling suspended)")
        health = self.monitor.snapshot() if self.monitor is not None else None
        if health is not None and not health.ready:
            problems.extend(
                f"health: {check.name}" for check in health.problems()
            )
        ready = not problems
        body = {
            "ready": ready,
            "state": self._state,
            "problems": problems,
            "generation": (
                self.publisher.current.generation
                if self.publisher.current is not None
                else None
            ),
            "degraded": bool(health.degraded) if health is not None else False,
        }
        return ready, body

    def liveness(self) -> dict:
        return {"live": True, "state": self._state}

    def health_body(self) -> dict:
        snapshot = (
            self.monitor.snapshot().as_dict()
            if self.monitor is not None
            else {"live": True, "ready": False, "degraded": False, "checks": []}
        )
        snapshot["state"] = self._state
        return snapshot

    def stats_body(self) -> dict:
        body = self.stats.as_dict()
        body["admission"] = self.admission.stats.as_dict()
        body["state"] = self._state
        body["uptime_seconds"] = time.monotonic() - self._started_at
        body["epoch"] = self.publisher.epoch
        current = self.publisher.current
        body["generation"] = (
            current.generation if current is not None else None
        )
        body["pending_inserts"] = self.admission.pending(CLASS_INSERT)
        body["pending_queries"] = self.admission.pending(CLASS_QUERY)
        return body

    # -- drain ---------------------------------------------------------

    async def drain(self) -> dict:
        """Graceful shutdown: stop admitting, apply the accepted insert
        queue, wait for in-flight readers, checkpoint, close the WAL.

        Idempotent — concurrent callers await the same drain.  Returns
        a report of what was finished vs. abandoned at the grace bound.
        """
        if self._drain_started:
            await self._drained.wait()
            return self._drain_report or {}
        self._drain_started = True
        if self._state == STATE_STARTING:
            # start() observes the flag and finishes the shutdown.
            self._state = STATE_DRAINING
            await self._drained.wait()
            return self._drain_report or {}
        self._state = STATE_DRAINING
        loop = asyncio.get_running_loop()
        deadline = time.monotonic() + self.config.drain_grace_seconds
        report: dict = {"abandoned_inserts": 0, "abandoned_queries": 0}

        # 1. Every insert already admitted must reach the WAL: a 200 we
        #    handed out is a promise the record exists after restart.
        try:
            await asyncio.wait_for(
                self._insert_queue.join(),
                timeout=max(0.01, deadline - time.monotonic()),
            )
        except asyncio.TimeoutError:
            report["abandoned_inserts"] = self._insert_queue.qsize()

        # 2. Stop the writer/supervisor.
        if self._supervisor_task is not None:
            self._supervisor_task.cancel()
            with contextlib.suppress(BaseException):
                await self._supervisor_task

        # 3. Let in-flight readers finish (their deadlines bound this).
        while (
            self.admission.pending(CLASS_QUERY) > 0
            and time.monotonic() < deadline
        ):
            await asyncio.sleep(0.02)
        report["abandoned_queries"] = self.admission.pending(CLASS_QUERY)

        # 4. Checkpoint and close the WAL.
        engine = self.engine
        if engine is not None:
            if (
                self.config.checkpoint_on_drain
                and engine.durable
                and not engine.durability_degraded
            ):
                try:
                    await loop.run_in_executor(
                        self._writer_executor, engine.checkpoint
                    )
                    self.stats.checkpoints_written += 1
                    report["checkpointed"] = True
                except Exception as exc:
                    self.stats.checkpoint_failures += 1
                    report["checkpoint_error"] = repr(exc)
            await loop.run_in_executor(self._writer_executor, engine.close)

        self._writer_executor.shutdown(wait=False)
        self._query_executor.shutdown(wait=False)
        self._state = STATE_STOPPED
        self._drain_report = report
        self._drained.set()
        return report

    async def wait_drained(self) -> None:
        await self._drained.wait()
