"""Always-on query service: snapshot-isolated serving over the engine.

See :mod:`repro.server.service` for the architecture (single writer,
snapshot readers, admission control, supervised restarts, graceful
drain) and ``docs/serving.md`` for the operator contract.
"""

from .admission import (
    CLASS_INSERT,
    CLASS_QUERY,
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    AdmissionStats,
    SHED_COST,
    SHED_DRAINING,
    SHED_NOT_READY,
    SHED_QUEUE_FULL,
    estimate_query_cost,
)
from .client import ServiceClient
from .http import HttpServer, serve_forever
from .service import (
    QUERY_KINDS,
    STATE_DRAINING,
    STATE_READY,
    STATE_STARTING,
    STATE_STOPPED,
    QueryService,
    ServerConfig,
    ServiceStats,
)
from .snapshot import EngineSnapshot, SnapshotPublisher

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionStats",
    "CLASS_INSERT",
    "CLASS_QUERY",
    "EngineSnapshot",
    "HttpServer",
    "QUERY_KINDS",
    "QueryService",
    "ServerConfig",
    "ServiceClient",
    "ServiceStats",
    "SHED_COST",
    "SHED_DRAINING",
    "SHED_NOT_READY",
    "SHED_QUEUE_FULL",
    "SnapshotPublisher",
    "STATE_DRAINING",
    "STATE_READY",
    "STATE_STARTING",
    "STATE_STOPPED",
    "estimate_query_cost",
    "serve_forever",
]
