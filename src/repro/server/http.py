"""Minimal asyncio HTTP/1.1 front end for :class:`QueryService`.

Hand-rolled on :func:`asyncio.start_server` — the repository ships no
web framework and needs none: the protocol surface is seven fixed
routes exchanging small JSON bodies.  The layer is deliberately thin;
every decision (admission, deadlines, shedding, outcomes) lives in
:mod:`repro.server.service`, which is what the tests exercise directly.

Routes:

========  =========== ====================================================
method    path        behaviour
========  =========== ====================================================
GET       /healthz    liveness — 200 while the process runs
GET       /readyz     readiness — 200 ready / 503 (starting, draining,
                      durability degraded, failed critical check)
GET       /health     full HealthSnapshot JSON (always 200 when live)
GET       /metrics    Prometheus text exposition
GET       /stats      service counters (requests, admission, generation)
POST      /query      ``{kind, k, min_weight, deadline_seconds}``
POST      /insert     ``{fields, weight}``
POST      /drain      graceful drain; responds with the drain report
========  =========== ====================================================

Shed responses (429) carry a ``Retry-After`` header.  Bodies above
:data:`MAX_BODY_BYTES` are refused with 413 before being read into
memory.
"""

from __future__ import annotations

import asyncio
import contextlib
import json

from ..observability.exporters import prometheus_text
from .service import QueryService

#: Largest request body the server will buffer.
MAX_BODY_BYTES = 1 << 20

#: Cap on the request line + headers block.
MAX_HEADER_BYTES = 16 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _BadRequest(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


def _response_bytes(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: dict | None = None,
    keep_alive: bool = True,
) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


class HttpServer:
    """Bind a :class:`QueryService` to a TCP port."""

    def __init__(self, service: QueryService, metrics=None):
        self.service = service
        self.metrics = metrics
        self._server: asyncio.Server | None = None

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Start listening.  The listener comes up *before* the service
        finishes loading, so readiness probes get an honest 503 during a
        long WAL replay instead of connection refused."""
        config = self.service.config
        self._server = await asyncio.start_server(
            self._handle_connection, host=config.host, port=config.port
        )

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    payload = json.dumps({"error": exc.message}).encode()
                    writer.write(
                        _response_bytes(
                            exc.status, payload, keep_alive=False
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                method, path, headers, body = request
                status, payload, extra = await self._dispatch(
                    method, path, body
                )
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                writer.write(
                    _response_bytes(
                        status,
                        payload,
                        content_type=extra.pop(
                            "content-type", "application/json"
                        ),
                        extra_headers=extra,
                        keep_alive=keep_alive,
                    )
                )
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            # The task may be cancelled while waiting for the transport
            # to flush (server.close() during shutdown) — either way the
            # connection is done.
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request frame; None on clean EOF between requests."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise _BadRequest(400, "truncated request") from exc
        except asyncio.LimitOverrunError as exc:
            raise _BadRequest(413, "headers too large") from exc
        if len(head) > MAX_HEADER_BYTES:
            raise _BadRequest(413, "headers too large")
        try:
            header_text = head.decode("latin-1")
        except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
            raise _BadRequest(400, "undecodable headers") from exc
        request_line, _, header_block = header_text.partition("\r\n")
        parts = request_line.split()
        if len(parts) != 3:
            raise _BadRequest(400, f"malformed request line {request_line!r}")
        method, path, _version = parts
        headers: dict[str, str] = {}
        for line in header_block.split("\r\n"):
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _BadRequest(400, f"malformed header {line!r}")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length_text = headers.get("content-length")
        if length_text is not None:
            try:
                length = int(length_text)
            except ValueError as exc:
                raise _BadRequest(400, "bad Content-Length") from exc
            if length < 0:
                raise _BadRequest(400, "bad Content-Length")
            if length > MAX_BODY_BYTES:
                raise _BadRequest(413, "body too large")
            if length:
                try:
                    body = await reader.readexactly(length)
                except asyncio.IncompleteReadError as exc:
                    raise _BadRequest(400, "truncated body") from exc
        return method, path, headers, body

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, bytes, dict]:
        """Route one request; returns (status, payload, extra headers)."""
        service = self.service
        extra: dict[str, str] = {}
        if method == "GET":
            if path == "/healthz":
                return 200, _json(service.liveness()), extra
            if path == "/readyz":
                ready, detail = service.readiness()
                return (200 if ready else 503), _json(detail), extra
            if path == "/health":
                return 200, _json(service.health_body()), extra
            if path == "/stats":
                return 200, _json(service.stats_body()), extra
            if path == "/metrics":
                if self.metrics is None or not getattr(
                    self.metrics, "enabled", False
                ):
                    return (
                        404,
                        _json({"error": "metrics not enabled"}),
                        extra,
                    )
                if service.monitor is not None:
                    service.monitor.publish(self.metrics)
                extra["content-type"] = "text/plain; version=0.0.4"
                return 200, prometheus_text(self.metrics).encode(), extra
            return 404, _json({"error": f"no route {path}"}), extra
        if method == "POST":
            if path == "/drain":
                report = await service.drain()
                return 200, _json({"drained": True, **report}), extra
            if path in ("/query", "/insert"):
                try:
                    payload = json.loads(body.decode() or "{}")
                    if not isinstance(payload, dict):
                        raise ValueError("body must be a JSON object")
                except (ValueError, UnicodeDecodeError) as exc:
                    return (
                        400,
                        _json({"error": f"bad JSON body: {exc}"}),
                        extra,
                    )
                if path == "/query":
                    status, answer = await service.handle_query(payload)
                else:
                    status, answer = await service.handle_insert(payload)
                if status == 429:
                    retry_after = answer.get("retry_after_seconds", 1.0)
                    extra["Retry-After"] = f"{max(retry_after, 0.001):.3f}"
                return status, _json(answer), extra
            return 404, _json({"error": f"no route {path}"}), extra
        return 405, _json({"error": f"method {method} not supported"}), extra


def _json(value) -> bytes:
    return json.dumps(value).encode()


async def serve_forever(service: QueryService, metrics=None) -> HttpServer:
    """Convenience: bind, start the service, return the running server."""
    server = HttpServer(service, metrics=metrics)
    await server.start()
    await service.start()
    return server
