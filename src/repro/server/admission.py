"""Admission control: bounded queues and load shedding for the service.

Work is rejected *before* it starts, never dropped after: a request the
service cannot afford gets an immediate ``429`` with ``Retry-After``
(shed-and-counted), everything admitted resolves as success or an
explicitly degraded anytime answer.  Decisions are per request class —
queries and inserts degrade independently, so an insert storm cannot
starve reads and a heavy analytical query cannot block the stream.

The controller is deliberately synchronous and lock-free: the service
calls it only from the event-loop thread, and its counters are plain
ints.  That keeps it trivially unit-testable and means admission adds
nanoseconds, not queue hops, to the request path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Request classes the controller tracks independently.
CLASS_QUERY = "query"
CLASS_INSERT = "insert"

#: Shed reasons (stable strings: they label metrics and responses).
SHED_QUEUE_FULL = "queue_full"
SHED_COST = "cost"
SHED_DRAINING = "draining"
SHED_NOT_READY = "not_ready"


@dataclass(frozen=True)
class AdmissionConfig:
    """Capacity contract of one service instance.

    Attributes:
        max_pending_queries: Queries admitted but not yet finished
            (queued + executing).  Past this, new queries shed with 429.
        max_concurrent_queries: Queries actually executing on reader
            threads; the rest of the admitted ones wait (their deadline
            keeps running, so a long wait degrades, never hangs).
        max_pending_inserts: Inserts accepted but not yet applied by
            the writer.  Bounds the admission queue's memory and the
            replay gap a crash could lose.
        max_query_cost: Estimated-cost ceiling per query — a request
            whose predicted work exceeds it is shed up front (429,
            reason ``cost``) rather than admitted and left to time out.
        cost_unit_records: Records per unit of estimated cost (the
            denominator of :func:`estimate_query_cost`).
        retry_after_seconds: Hint sent with every 429.
        default_deadline_seconds: Deadline stamped on requests that do
            not carry one.
        max_deadline_seconds: Ceiling on client-requested deadlines.
    """

    max_pending_queries: int = 32
    max_concurrent_queries: int = 2
    max_pending_inserts: int = 256
    max_query_cost: float = 64.0
    cost_unit_records: int = 2000
    retry_after_seconds: float = 0.5
    default_deadline_seconds: float = 10.0
    max_deadline_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.max_pending_queries < 1:
            raise ValueError("max_pending_queries must be >= 1")
        if self.max_concurrent_queries < 1:
            raise ValueError("max_concurrent_queries must be >= 1")
        if self.max_pending_inserts < 1:
            raise ValueError("max_pending_inserts must be >= 1")
        if self.max_query_cost <= 0:
            raise ValueError("max_query_cost must be > 0")
        if self.cost_unit_records < 1:
            raise ValueError("cost_unit_records must be >= 1")
        for name in (
            "retry_after_seconds",
            "default_deadline_seconds",
            "max_deadline_seconds",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")

    def clamp_deadline(self, requested: float | None) -> float:
        """The deadline a request actually runs under."""
        if requested is None:
            return self.default_deadline_seconds
        return max(0.001, min(requested, self.max_deadline_seconds))


#: Relative cost weight per query kind: rank and threshold run the full
#: per-level pipeline on the raw store, counts start from the maintained
#: closure.  Interval queries add the world-scoring stage on top of the
#: closure pipeline; their weight grows with the requested world count
#: (see :func:`estimate_query_cost`).
_KIND_WEIGHT = {"topk": 1.0, "rank": 2.0, "threshold": 2.0, "interval": 2.0}


def estimate_query_cost(
    kind: str, n_records: int, config: AdmissionConfig, worlds: int = 1
) -> float:
    """Predicted work units of one query against *n_records* records.

    Deliberately coarse — a monotone proxy (records / unit, weighted by
    verb) is enough to shed the obviously unaffordable before any work
    starts; the per-request deadline handles the rest.  For interval
    queries the weight scales with the requested world count *worlds*:
    the segmentation DP keeps R candidates per cell, so enumeration work
    grows with R and a huge R must shed up front, not time out.
    """
    base = 1.0 + n_records / config.cost_unit_records
    weight = _KIND_WEIGHT.get(kind, 2.0)
    if kind == "interval":
        weight += max(worlds - 1, 0) / 4.0
    return base * weight


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission attempt.

    ``admitted`` requests MUST be released exactly once; shed requests
    carry the machine-readable ``reason`` and the ``retry_after``
    seconds to surface as a 429.
    """

    admitted: bool
    reason: str = ""
    retry_after_seconds: float = 0.0


@dataclass
class AdmissionStats:
    """Monotone counters the stats endpoint and the soak harness read."""

    admitted: dict = field(
        default_factory=lambda: {CLASS_QUERY: 0, CLASS_INSERT: 0}
    )
    shed: dict = field(default_factory=dict)
    peak_pending: dict = field(
        default_factory=lambda: {CLASS_QUERY: 0, CLASS_INSERT: 0}
    )

    def as_dict(self) -> dict:
        return {
            "admitted": dict(self.admitted),
            "shed": dict(self.shed),
            "peak_pending": dict(self.peak_pending),
        }


class AdmissionController:
    """Tracks pending work per class and admits or sheds new requests."""

    def __init__(self, config: AdmissionConfig, metrics=None):
        self.config = config
        self._pending = {CLASS_QUERY: 0, CLASS_INSERT: 0}
        self.stats = AdmissionStats()
        self._metrics = metrics
        if metrics is not None and getattr(metrics, "enabled", False):
            metrics.describe(
                "repro_admission_queue_depth",
                "Admitted-but-unfinished requests per class",
            )
            metrics.describe(
                "repro_requests_shed_total",
                "Requests rejected before any work started",
            )

    def pending(self, request_class: str) -> int:
        return self._pending[request_class]

    def _limit(self, request_class: str) -> int:
        if request_class == CLASS_QUERY:
            return self.config.max_pending_queries
        return self.config.max_pending_inserts

    def _publish_depth(self, request_class: str) -> None:
        metrics = self._metrics
        if metrics is not None and getattr(metrics, "enabled", False):
            metrics.gauge(
                "repro_admission_queue_depth", queue=request_class
            ).set(float(self._pending[request_class]))

    def _shed(self, request_class: str, reason: str) -> AdmissionDecision:
        key = f"{request_class}.{reason}"
        self.stats.shed[key] = self.stats.shed.get(key, 0) + 1
        metrics = self._metrics
        if metrics is not None and getattr(metrics, "enabled", False):
            metrics.counter(
                "repro_requests_shed_total",
                queue=request_class,
                reason=reason,
            ).inc()
        return AdmissionDecision(
            admitted=False,
            reason=reason,
            retry_after_seconds=self.config.retry_after_seconds,
        )

    def try_admit(
        self, request_class: str, cost: float = 1.0
    ) -> AdmissionDecision:
        """Admit one request or shed it (queue depth, then cost)."""
        if self._pending[request_class] >= self._limit(request_class):
            return self._shed(request_class, SHED_QUEUE_FULL)
        if (
            request_class == CLASS_QUERY
            and cost > self.config.max_query_cost
        ):
            return self._shed(request_class, SHED_COST)
        self._pending[request_class] += 1
        self.stats.admitted[request_class] += 1
        self.stats.peak_pending[request_class] = max(
            self.stats.peak_pending[request_class],
            self._pending[request_class],
        )
        self._publish_depth(request_class)
        return AdmissionDecision(admitted=True)

    def release(self, request_class: str) -> None:
        """One admitted request finished (any outcome)."""
        if self._pending[request_class] <= 0:
            raise RuntimeError(
                f"release({request_class!r}) without a matching admit"
            )
        self._pending[request_class] -= 1
        self._publish_depth(request_class)
