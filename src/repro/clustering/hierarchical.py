"""Agglomerative hierarchical grouping (Section 5.2).

Builds a merge tree over records using the pairwise scores and supports
the two things the paper derives from a hierarchy:

* the **best frontier**: a dynamic program that picks, for every internal
  node, either the node's whole cluster or the best frontiers of its
  children — the highest-scoring disjoint grouping selectable from the
  hierarchy (Section 5.2's leaf-to-root propagation);
* the **leaf order**: a linear arrangement of records obtained by reading
  the leaves left to right, usable as an embedding for the segmentation
  DP (which strictly generalizes frontier selection — Section 5.3).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from .correlation import ScoreMatrix, group_score


@dataclass
class HierarchyNode:
    """A node of the merge tree.

    Leaves carry a single position; internal nodes carry two children and
    the linkage score at which they merged.
    """

    node_id: int
    members: list[int]
    children: tuple[int, int] | None = None
    merge_score: float = 0.0


@dataclass
class Hierarchy:
    """A full agglomerative merge forest (one root per final component)."""

    nodes: list[HierarchyNode] = field(default_factory=list)
    roots: list[int] = field(default_factory=list)

    def leaf_order(self) -> list[int]:
        """Return positions in left-to-right leaf order across all roots."""
        order: list[int] = []
        for root in self.roots:
            self._collect(root, order)
        return order

    def _collect(self, node_id: int, out: list[int]) -> None:
        node = self.nodes[node_id]
        if node.children is None:
            out.extend(node.members)
        else:
            self._collect(node.children[0], out)
            self._collect(node.children[1], out)

    def best_frontier(self, scores: ScoreMatrix) -> tuple[list[list[int]], float]:
        """Return the best-scoring frontier partition and its Eq. 2 score."""
        best_parts: dict[int, list[list[int]]] = {}
        best_score: dict[int, float] = {}

        # Nodes were appended children-before-parents, so one forward
        # pass is a valid bottom-up order.
        for node in self.nodes:
            own = group_score(node.members, scores)
            if node.children is None:
                best_parts[node.node_id] = [list(node.members)]
                best_score[node.node_id] = own
                continue
            left, right = node.children
            split_score = best_score[left] + best_score[right]
            if own >= split_score:
                best_parts[node.node_id] = [list(node.members)]
                best_score[node.node_id] = own
            else:
                best_parts[node.node_id] = best_parts[left] + best_parts[right]
                best_score[node.node_id] = split_score

        partition: list[list[int]] = []
        total = 0.0
        for root in self.roots:
            partition.extend(best_parts[root])
            total += best_score[root]
        return partition, total


def top_r_frontiers(
    hierarchy: Hierarchy, scores: ScoreMatrix, r: int
) -> list[tuple[list[list[int]], float]]:
    """The Section 5.2 leaf-to-root DP: R best frontier groupings.

    For every node the R highest-scoring disjoint groupings of its
    subtree are maintained — either the node's whole cluster, or a
    combination of the children's best lists (top R of the cross
    product).  Roots' lists are combined the same way.  Returns up to
    *r* ``(partition, score)`` pairs, best first.

    The paper mentions this algorithm but presents only the (strictly
    more general) segmentation DP; it is implemented here as the X3
    comparison point.
    """
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")

    best: dict[int, list[tuple[float, list[list[int]]]]] = {}
    for node in hierarchy.nodes:  # children precede parents
        own = (group_score(node.members, scores), [list(node.members)])
        if node.children is None:
            best[node.node_id] = [own]
            continue
        left, right = node.children
        combined = _cross_top_r(best[left], best[right], r)
        merged = combined + [own]
        merged.sort(key=lambda entry: -entry[0])
        best[node.node_id] = _dedupe_partitions(merged)[:r]

    result: list[tuple[float, list[list[int]]]] = [(0.0, [])]
    for root in hierarchy.roots:
        result = _cross_top_r(result, best[root], r)
    return [(partition, score) for score, partition in result[:r]]


def _cross_top_r(
    left: list[tuple[float, list[list[int]]]],
    right: list[tuple[float, list[list[int]]]],
    r: int,
) -> list[tuple[float, list[list[int]]]]:
    combos = [
        (ls + rs, [list(g) for g in lp] + [list(g) for g in rp])
        for ls, lp in left
        for rs, rp in right
    ]
    combos.sort(key=lambda entry: -entry[0])
    return combos[:r]


def _dedupe_partitions(
    entries: list[tuple[float, list[list[int]]]],
) -> list[tuple[float, list[list[int]]]]:
    seen: set[tuple] = set()
    out = []
    for score, partition in entries:
        key = tuple(sorted(tuple(sorted(g)) for g in partition))
        if key in seen:
            continue
        seen.add(key)
        out.append((score, partition))
    return out


def divide_and_merge(scores: ScoreMatrix) -> Hierarchy:
    """Divide-and-merge hierarchy (Cheng, Kannan, Vempala & Wang [14]).

    The hybrid the paper cites for Section 5.2: a *divide* phase
    recursively bisects each positive-similarity component by the sign of
    its Fiedler vector (the spectral cut), producing a binary tree; the
    *merge* phase is whatever frontier selection the caller runs on it
    (:meth:`Hierarchy.best_frontier` or :func:`top_r_frontiers` — the
    dynamic programs over the tree).
    """
    import numpy as np

    from ..graphs.union_find import UnionFind

    hierarchy = Hierarchy()

    def positive_components(members: list[int]) -> list[list[int]]:
        local = {m: i for i, m in enumerate(members)}
        uf = UnionFind(len(members))
        for m in members:
            for other in scores.scored_neighbors(m):
                j = local.get(other)
                if j is not None and scores.get(m, other) > 0:
                    uf.union(local[m], j)
        return [
            sorted(members[i] for i in component)
            for component in uf.components()
        ]

    def spectral_split(members: list[int]) -> tuple[list[int], list[int]] | None:
        if len(members) < 2:
            return None
        local = {m: i for i, m in enumerate(members)}
        size = len(members)
        weight = np.zeros((size, size))
        for m in members:
            for other in scores.scored_neighbors(m):
                j = local.get(other)
                if j is None:
                    continue
                score = scores.get(m, other)
                if score > 0:
                    weight[local[m], j] = score
        weight = np.maximum(weight, weight.T)
        laplacian = np.diag(weight.sum(axis=1)) - weight
        _, eigenvectors = np.linalg.eigh(laplacian)
        fiedler = eigenvectors[:, 1] if size > 1 else np.zeros(size)
        left = [m for m in members if fiedler[local[m]] < 0]
        right = [m for m in members if fiedler[local[m]] >= 0]
        if not left or not right:
            # Degenerate cut: split off the single extreme vertex.
            ordered = sorted(members, key=lambda m: fiedler[local[m]])
            left, right = ordered[:1], ordered[1:]
        return left, right

    def build(members: list[int]) -> int:
        node = HierarchyNode(node_id=len(hierarchy.nodes), members=sorted(members))
        hierarchy.nodes.append(node)
        if len(members) >= 2:
            split = spectral_split(members)
            if split is not None:
                placeholder = node.node_id
                left_id = build(split[0])
                right_id = build(split[1])
                hierarchy.nodes[placeholder].children = (left_id, right_id)
        return node.node_id

    roots = []
    for component in positive_components(list(range(scores.n))):
        roots.append(build(component))
    hierarchy.roots = sorted(roots)
    # best_frontier/top_r_frontiers expect children before parents; the
    # recursive build appends parents first, so re-order bottom-up.
    hierarchy.nodes = _reorder_children_first(hierarchy)
    return hierarchy


def _reorder_children_first(hierarchy: Hierarchy) -> list[HierarchyNode]:
    """Renumber nodes so every child precedes its parent."""
    order: list[int] = []
    visited: set[int] = set()

    def visit(node_id: int) -> None:
        if node_id in visited:
            return
        visited.add(node_id)
        node = hierarchy.nodes[node_id]
        if node.children is not None:
            visit(node.children[0])
            visit(node.children[1])
        order.append(node_id)

    for root in hierarchy.roots:
        visit(root)
    remap = {old: new for new, old in enumerate(order)}
    new_nodes = []
    for old_id in order:
        node = hierarchy.nodes[old_id]
        new_nodes.append(
            HierarchyNode(
                node_id=remap[old_id],
                members=node.members,
                children=(
                    (remap[node.children[0]], remap[node.children[1]])
                    if node.children is not None
                    else None
                ),
                merge_score=node.merge_score,
            )
        )
    hierarchy.roots = sorted(remap[r] for r in hierarchy.roots)
    return new_nodes


def agglomerate(
    scores: ScoreMatrix,
    linkage: str = "average",
    min_link_score: float = 0.0,
) -> Hierarchy:
    """Agglomerative clustering on the scored pairs.

    Repeatedly merges the cluster pair with the best linkage score
    (``"single"``: max pairwise score, ``"average"``: mean pairwise
    score) while that score exceeds *min_link_score*.  Only explicitly
    scored pairs create merge opportunities, so unrelated records never
    join the same tree.
    """
    if linkage not in ("single", "average"):
        raise ValueError(f"linkage must be 'single' or 'average', got {linkage!r}")

    hierarchy = Hierarchy()
    cluster_of: dict[int, int] = {}
    for position in range(scores.n):
        node = HierarchyNode(node_id=len(hierarchy.nodes), members=[position])
        hierarchy.nodes.append(node)
        cluster_of[position] = node.node_id

    # cross[a][b] = (sum of pair scores, n pairs) between live clusters.
    cross: dict[int, dict[int, tuple[float, int]]] = {
        node.node_id: {} for node in hierarchy.nodes
    }
    single_best: dict[tuple[int, int], float] = {}
    heap: list[tuple[float, int, int]] = []
    for i, j, score in scores.scored_pairs():
        a, b = cluster_of[i], cluster_of[j]
        key = (min(a, b), max(a, b))
        total, count = cross[a].get(b, (0.0, 0))
        cross[a][b] = cross[b][a] = (total + score, count + 1)
        single_best[key] = max(single_best.get(key, float("-inf")), score)
        heapq.heappush(heap, (-score, *key))

    live = {node.node_id for node in hierarchy.nodes}

    def linkage_score(a: int, b: int) -> float:
        if linkage == "single":
            return single_best[(min(a, b), max(a, b))]
        total, count = cross[a][b]
        return total / count

    while heap:
        neg_score, a, b = heapq.heappop(heap)
        if a not in live or b not in live or b not in cross[a]:
            continue
        current = linkage_score(a, b)
        if current != -neg_score:
            continue  # stale entry; the true value was re-pushed on merge
        if current <= min_link_score:
            break

        merged = HierarchyNode(
            node_id=len(hierarchy.nodes),
            members=hierarchy.nodes[a].members + hierarchy.nodes[b].members,
            children=(a, b),
            merge_score=current,
        )
        hierarchy.nodes.append(merged)
        live.discard(a)
        live.discard(b)
        live.add(merged.node_id)

        cross[merged.node_id] = {}
        neighbors = (set(cross[a]) | set(cross[b])) - {a, b}
        for other in neighbors:
            if other not in live:
                continue
            total_a, count_a = cross[a].get(other, (0.0, 0))
            total_b, count_b = cross[b].get(other, (0.0, 0))
            combined = (total_a + total_b, count_a + count_b)
            cross[merged.node_id][other] = combined
            cross[other][merged.node_id] = combined
            key = (min(merged.node_id, other), max(merged.node_id, other))
            best_a = single_best.get((min(a, other), max(a, other)), float("-inf"))
            best_b = single_best.get((min(b, other), max(b, other)), float("-inf"))
            single_best[key] = max(best_a, best_b)
            new_score = linkage_score(merged.node_id, other)
            heapq.heappush(heap, (-new_score, *key))

    hierarchy.roots = sorted(live)
    return hierarchy
