"""LP-relaxation correlation clustering (Charikar–Guruswami–Wirth [10]).

The paper uses this LP as its *exact* comparator: "When the above LP
returns integral answers, the solution is guaranteed to be exact."

    max   sum_{ij} P_ij x_ij          (constants dropped from Eq. in Sec 5.1)
    s.t.  x_ij + x_jk - x_ik <= 1     for all triples i, j, k
          0 <= x_ij <= 1

We keep one variable per *scored* pair; unscored pairs are fixed at
x = 0, i.e. treated as *hard non-links* (they were blocked out by a
necessary predicate, so they are known non-duplicates).  Note this is
slightly stronger than the ScoreMatrix default of "score 0, uncertain":
on sparse matrices the LP optimizes over partitions that never place an
unscored pair inside a group.  On fully-scored matrices (how the paper
ran it on its small Figure-7 datasets) the spaces coincide and an
integral solution is the exact Eq. 1 optimum.  Triangle constraints are
added lazily: solve, scan for violated triangles around each vertex, add
them, repeat.  On duplicate-detection instances the LP is
almost always integral at convergence; when it is not, a
threshold-closure rounding produces a partition and the result is marked
non-integral (no exactness certificate), matching how the paper filtered
its Figure-7 datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from ..graphs.union_find import UnionFind
from .correlation import ScoreMatrix

_INTEGRALITY_EPS = 1e-6
_VIOLATION_EPS = 1e-9


@dataclass
class LpResult:
    """Outcome of :func:`lp_cluster`.

    Attributes:
        partition: Groups of positions, largest first.
        objective: LP objective value (sum of P_ij x_ij).
        integral: True when every variable converged to 0/1 — the
            partition is then provably Eq. 1-optimal.
        n_constraints: Triangle constraints generated.
        n_rounds: Solve/separate rounds used.
    """

    partition: list[list[int]]
    objective: float
    integral: bool
    n_constraints: int
    n_rounds: int


def lp_cluster(
    scores: ScoreMatrix,
    max_rounds: int = 50,
    max_new_constraints_per_round: int = 50_000,
) -> LpResult:
    """Solve the correlation-clustering LP with lazy triangle constraints."""
    pairs = [(i, j) for i, j, _ in scores.scored_pairs()]
    pairs.sort()
    var_index = {pair: idx for idx, pair in enumerate(pairs)}
    n_vars = len(pairs)
    if n_vars == 0:
        return LpResult(
            partition=[[i] for i in range(scores.n)],
            objective=0.0,
            integral=True,
            n_constraints=0,
            n_rounds=0,
        )

    cost = np.array([-scores.get(i, j) for i, j in pairs])  # linprog minimizes
    bounds = [(0.0, 1.0)] * n_vars

    constraint_rows: list[tuple[list[int], list[float]]] = []
    seen_constraints: set[tuple[int, int, int]] = set()
    x = np.zeros(n_vars)
    rounds = 0

    for rounds in range(1, max_rounds + 1):
        if constraint_rows:
            a_ub = _build_matrix(constraint_rows, n_vars)
            b_ub = np.ones(len(constraint_rows))
            solution = linprog(
                cost, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs"
            )
        else:
            solution = linprog(cost, bounds=bounds, method="highs")
        if not solution.success:
            raise RuntimeError(f"LP solve failed: {solution.message}")
        x = solution.x

        new_constraints = _violated_triangles(
            scores, var_index, x, seen_constraints, max_new_constraints_per_round
        )
        if not new_constraints:
            break
        constraint_rows.extend(new_constraints)

    integral = bool(
        np.all((x < _INTEGRALITY_EPS) | (x > 1.0 - _INTEGRALITY_EPS))
    )
    partition = _round_to_partition(scores.n, pairs, x)
    if not integral:
        # Fractional solution: also try region-growing rounding in the
        # style of Charikar-Guruswami-Wirth and keep the better partition
        # under Eq. 1 (the paper notes [10] "proposes a number of
        # rounding schemes" for exactly this case).
        from .correlation import partition_score

        region = _region_growing_rounding(scores, var_index, x)
        if partition_score(region, scores) > partition_score(partition, scores):
            partition = region
    return LpResult(
        partition=partition,
        objective=float(-cost @ x),
        integral=integral,
        n_constraints=len(constraint_rows),
        n_rounds=rounds,
    )


def _build_matrix(
    rows: list[tuple[list[int], list[float]]], n_vars: int
) -> csr_matrix:
    data: list[float] = []
    row_idx: list[int] = []
    col_idx: list[int] = []
    for r, (cols, coefs) in enumerate(rows):
        for c, coef in zip(cols, coefs):
            row_idx.append(r)
            col_idx.append(c)
            data.append(coef)
    return csr_matrix((data, (row_idx, col_idx)), shape=(len(rows), n_vars))


def _violated_triangles(
    scores: ScoreMatrix,
    var_index: dict[tuple[int, int], int],
    x: np.ndarray,
    seen: set[tuple[int, int, int]],
    limit: int,
) -> list[tuple[list[int], list[float]]]:
    """Find triangle inequalities violated by the current solution.

    For each vertex j and each pair of its scored neighbors (i, k), the
    constraint ``x_ij + x_jk - x_ik <= 1`` must hold; when (i, k) carries
    no variable it is fixed at 0, giving ``x_ij + x_jk <= 1``.
    """

    def value(a: int, b: int) -> float:
        idx = var_index.get((a, b) if a < b else (b, a))
        return float(x[idx]) if idx is not None else 0.0

    new_rows: list[tuple[list[int], list[float]]] = []
    for j in range(scores.n):
        neighbors = sorted(scores.scored_neighbors(j))
        for a_pos, i in enumerate(neighbors):
            x_ij = value(i, j)
            if x_ij <= _VIOLATION_EPS:
                continue
            for k in neighbors[a_pos + 1 :]:
                x_jk = value(j, k)
                if x_ij + x_jk <= 1.0 + _VIOLATION_EPS:
                    continue
                x_ik = value(i, k)
                if x_ij + x_jk - x_ik <= 1.0 + _VIOLATION_EPS:
                    continue
                key = (i, j, k)
                if key in seen:
                    continue
                seen.add(key)
                cols = [var_index[(min(i, j), max(i, j))],
                        var_index[(min(j, k), max(j, k))]]
                coefs = [1.0, 1.0]
                ik_idx = var_index.get((i, k))
                if ik_idx is not None:
                    cols.append(ik_idx)
                    coefs.append(-1.0)
                new_rows.append((cols, coefs))
                if len(new_rows) >= limit:
                    return new_rows
    return new_rows


def _round_to_partition(
    n: int, pairs: list[tuple[int, int]], x: np.ndarray
) -> list[list[int]]:
    """Closure of pairs with x >= 1/2 (exact when the LP is integral)."""
    uf = UnionFind(n)
    for (i, j), value in zip(pairs, x):
        if value >= 0.5:
            uf.union(i, j)
    return uf.components()


def _region_growing_rounding(
    scores: ScoreMatrix,
    var_index: dict[tuple[int, int], int],
    x: np.ndarray,
) -> list[list[int]]:
    """Charikar-Guruswami-Wirth-style ball rounding of a fractional LP.

    ``d_ij = 1 - x_ij`` is (by the triangle constraints) a semi-metric.
    Repeatedly pick the unclustered vertex with the largest fractional
    attachment as pivot, sweep candidate radii below 1/2 (the distinct
    distances around the pivot), and cut the ball whose local Eq. 1
    agreement is best.  Deterministic — the constructive counterpart of
    the randomized-radius analysis.
    """

    def distance(a: int, b: int) -> float:
        idx = var_index.get((a, b) if a < b else (b, a))
        return 1.0 - float(x[idx]) if idx is not None else 1.0

    unclustered = set(range(scores.n))
    partition: list[list[int]] = []
    while unclustered:
        pivot = max(
            unclustered,
            key=lambda v: (
                sum(
                    1.0 - distance(v, u)
                    for u in scores.scored_neighbors(v)
                    if u in unclustered
                ),
                -v,
            ),
        )
        neighbors = [
            (distance(pivot, u), u)
            for u in scores.scored_neighbors(pivot)
            if u in unclustered and distance(pivot, u) < 0.5
        ]
        neighbors.sort()
        best_ball = [pivot]
        best_score = _local_agreement(scores, [pivot], unclustered)
        ball = [pivot]
        for _, u in neighbors:
            ball = ball + [u]
            score = _local_agreement(scores, ball, unclustered)
            if score > best_score:
                best_score = score
                best_ball = list(ball)
        partition.append(sorted(best_ball))
        unclustered -= set(best_ball)
    partition.sort(key=len, reverse=True)
    return partition


def _local_agreement(
    scores: ScoreMatrix, ball: list[int], unclustered: set[int]
) -> float:
    """Eq. 1 agreement of cutting *ball* out of the unclustered set."""
    members = set(ball)
    total = 0.0
    for v in ball:
        for u in scores.scored_neighbors(v):
            if u not in unclustered:
                continue
            score = scores.get(v, u)
            if u in members:
                if score > 0 and u > v:
                    total += score
            elif score < 0:
                total -= score
    return total
