"""Exhaustive exact correlation clustering for tiny instances.

Enumerates every set partition (Bell number growth — refuse beyond a
small n) and returns the Eq. 1 optimum.  This is the test oracle against
which the LP, the pivot heuristic and the segmentation DP are verified on
small random instances.
"""

from __future__ import annotations

from collections.abc import Iterator

from .correlation import ScoreMatrix, partition_score

MAX_EXACT_N = 12


def all_partitions(n: int) -> Iterator[list[list[int]]]:
    """Yield every set partition of ``0..n-1``.

    Uses the restricted-growth-string recursion: item i joins an existing
    block or opens a new one.
    """
    if n == 0:
        yield []
        return

    def recurse(i: int, blocks: list[list[int]]) -> Iterator[list[list[int]]]:
        if i == n:
            yield [list(b) for b in blocks]
            return
        for block in blocks:
            block.append(i)
            yield from recurse(i + 1, blocks)
            block.pop()
        blocks.append([i])
        yield from recurse(i + 1, blocks)
        blocks.pop()

    yield from recurse(0, [])


def exact_best_partition(scores: ScoreMatrix) -> tuple[list[list[int]], float]:
    """Return the Eq. 1-optimal partition and its score, by enumeration."""
    if scores.n > MAX_EXACT_N:
        raise ValueError(
            f"exact enumeration limited to n <= {MAX_EXACT_N}, got {scores.n}"
        )
    best: list[list[int]] | None = None
    best_score = float("-inf")
    for partition in all_partitions(scores.n):
        score = partition_score(partition, scores)
        if score > best_score:
            best = partition
            best_score = score
    assert best is not None or scores.n == 0
    return (best or []), (best_score if best is not None else 0.0)


def exact_topk_answers(
    scores: ScoreMatrix,
    weights: list[float],
    k: int,
    r: int,
) -> list[tuple[tuple[tuple[int, ...], ...], float, float]]:
    """Exact R best Top-K answers by exhaustive partition enumeration.

    A partition *supports* the Top-K answer formed by its K
    heaviest groups (ties broken by weight desc, then lexicographically —
    partitions whose K-th and (K+1)-th groups tie in weight are skipped,
    mirroring the segmentation DP's strict threshold semantics).  Each
    answer is scored two ways:

    * ``best``: the highest Eq. 1 score among supporting partitions
      (what the segmentation DP optimizes);
    * ``log_mass``: log of the summed Gibbs weights ``exp(score)`` over
      all supporting partitions — the paper's "sum over the score of all
      groupings where C1..CK are the K largest" made numerically usable.

    Returns up to *r* answers sorted by ``best`` descending, each as
    ``(groups, best, log_mass)``.  Exponential time — tiny inputs only.
    """
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if scores.n > MAX_EXACT_N:
        raise ValueError(
            f"exact enumeration limited to n <= {MAX_EXACT_N}, got {scores.n}"
        )
    if len(weights) != scores.n:
        raise ValueError(f"{len(weights)} weights for {scores.n} items")

    best: dict[tuple, float] = {}
    masses: dict[tuple, list[float]] = {}
    for partition in all_partitions(scores.n):
        if len(partition) < k:
            continue
        weighted = sorted(
            (
                (sum(weights[i] for i in group), tuple(sorted(group)))
                for group in partition
            ),
            key=lambda g: (-g[0], g[1]),
        )
        if len(weighted) > k and weighted[k - 1][0] == weighted[k][0]:
            continue  # ambiguous K-th group: not a valid Top-K support
        answer = tuple(group for _, group in weighted[:k])
        score = partition_score(partition, scores)
        if score > best.get(answer, float("-inf")):
            best[answer] = score
        masses.setdefault(answer, []).append(score)

    import math

    ranked = []
    for answer, top_score in best.items():
        shift = max(masses[answer])
        log_mass = shift + math.log(
            sum(math.exp(s - shift) for s in masses[answer])
        )
        ranked.append((answer, top_score, log_mass))
    # Canonical tie order: equal-score answers sort by their group tuple
    # so the cut at r is stable across enumeration orders (the oracle
    # suites diff this list against the segmentation DP's output).
    ranked.sort(key=lambda item: (-item[1], item[0]))
    return ranked[:r]


def exact_top_partitions(
    scores: ScoreMatrix, r: int
) -> list[tuple[list[list[int]], float]]:
    """Return the *r* highest-scoring partitions, best first.

    The exponential-time ground truth for "R highest scoring answers"
    claims (Section 5's exact comparator on small data).
    """
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    if scores.n > MAX_EXACT_N:
        raise ValueError(
            f"exact enumeration limited to n <= {MAX_EXACT_N}, got {scores.n}"
        )
    ranked = sorted(
        (
            (partition_score(p, scores), sorted(sorted(g) for g in p))
            for p in all_partitions(scores.n)
        ),
        key=lambda pair: (-pair[0], pair[1]),
    )
    return [(p, s) for s, p in ranked[:r]]
