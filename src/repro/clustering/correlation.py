"""Correlation-clustering scores (Section 5.1, Eq. 1).

A :class:`ScoreMatrix` holds the sparse signed pairwise scores P — only
pairs that passed the necessary predicate (or were otherwise enumerated)
are stored; absent pairs score the ``default`` (0.0: fully uncertain).

:func:`correlation_score` implements Eq. 1 exactly (ordered-pair
convention: within-group positive edges and cross-group negative edges
each count once per endpoint).  :func:`group_score` is the
group-decomposable term ``Group_Score(c, D - c)`` of Eq. 2, which the
segmentation DP sums over segments.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence

from ..core.records import Record
from ..predicates.base import Predicate
from ..predicates.blocking import candidate_pairs
from ..scoring.pairwise import PairwiseScorer


class ScoreMatrix:
    """Sparse symmetric pairwise score storage over positions 0..n-1."""

    def __init__(self, n: int, default: float = 0.0):
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self._n = n
        self._default = default
        self._scores: dict[tuple[int, int], float] = {}
        self._adjacency: dict[int, set[int]] = defaultdict(set)

    @property
    def n(self) -> int:
        """Number of items the matrix covers."""
        return self._n

    @property
    def default(self) -> float:
        """Score assumed for pairs that were never evaluated."""
        return self._default

    @property
    def n_scored_pairs(self) -> int:
        """Number of explicitly stored pairs."""
        return len(self._scores)

    @staticmethod
    def _key(i: int, j: int) -> tuple[int, int]:
        return (i, j) if i < j else (j, i)

    def set(self, i: int, j: int, score: float) -> None:
        """Store the score of the unordered pair (i, j)."""
        if i == j:
            raise ValueError(f"self-pair ({i}, {i})")
        if not (0 <= i < self._n and 0 <= j < self._n):
            raise IndexError(f"pair ({i}, {j}) outside range 0..{self._n - 1}")
        self._scores[self._key(i, j)] = score
        self._adjacency[i].add(j)
        self._adjacency[j].add(i)

    def get(self, i: int, j: int) -> float:
        """Return the score of (i, j); the default when never stored."""
        if i == j:
            raise ValueError(f"self-pair ({i}, {i})")
        return self._scores.get(self._key(i, j), self._default)

    def has(self, i: int, j: int) -> bool:
        """Return True when (i, j) was explicitly scored."""
        return self._key(i, j) in self._scores

    def scored_neighbors(self, i: int) -> set[int]:
        """Return positions with an explicit score against *i*."""
        return set(self._adjacency.get(i, ()))

    def scored_pairs(self) -> Iterable[tuple[int, int, float]]:
        """Yield every stored (i, j, score) with i < j."""
        for (i, j), score in self._scores.items():
            yield i, j, score

    @classmethod
    def from_scorer(
        cls,
        records: Sequence[Record],
        scorer: PairwiseScorer,
        necessary: Predicate | None = None,
        default: float = 0.0,
    ) -> "ScoreMatrix":
        """Score all pairs passing *necessary* (or all pairs when None).

        Passing ``necessary=None`` enumerates the full Cartesian set —
        only sensible for small inputs (e.g. the Figure-7 datasets).
        """
        matrix = cls(len(records), default=default)
        if necessary is None:
            for i, record_a in enumerate(records):
                for j in range(i + 1, len(records)):
                    matrix.set(i, j, scorer.score(record_a, records[j]))
        else:
            for i, j in candidate_pairs(necessary, records, verify=True):
                matrix.set(i, j, scorer.score(records[i], records[j]))
        return matrix


def correlation_score(
    partition: Sequence[Sequence[int]], scores: ScoreMatrix
) -> float:
    """Eq. 1: agreement of *partition* with the pairwise scores.

    Ordered-pair convention (each within-group positive pair and each
    cross-group negative edge contributes twice overall, once per
    endpoint) — matching the paper's double summation literally.
    Only explicitly scored pairs contribute; unscored pairs carry the
    matrix default of 0 and are neutral.
    """
    member_of: dict[int, int] = {}
    for group_index, group in enumerate(partition):
        for position in group:
            if position in member_of:
                raise ValueError(f"position {position} appears in two groups")
            member_of[position] = group_index

    total = 0.0
    for i, j, score in scores.scored_pairs():
        same = member_of.get(i) is not None and member_of.get(i) == member_of.get(j)
        if same and score > 0:
            total += 2.0 * score
        elif not same and score < 0:
            total -= 2.0 * score
    return total


def group_score(members: Sequence[int], scores: ScoreMatrix) -> float:
    """Eq. 2 term ``Group_Score(c, D - c)`` for the group *members*.

    Within-group positive pairs count twice (ordered pairs); negative
    edges leaving the group count once from this side — summing over all
    groups of a partition reproduces :func:`correlation_score` exactly.
    """
    member_set = set(members)
    total = 0.0
    for i in members:
        for j in scores.scored_neighbors(i):
            score = scores.get(i, j)
            if j in member_set:
                if score > 0:
                    total += score  # ordered pairs: (i,j) and (j,i) both hit
            elif score < 0:
                total -= score
    return total


def partition_score(
    partition: Sequence[Sequence[int]], scores: ScoreMatrix
) -> float:
    """Sum of :func:`group_score` over the groups (equals Eq. 1)."""
    return sum(group_score(group, scores) for group in partition)
