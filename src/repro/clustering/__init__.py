"""Clustering substrate: scores, baselines, LP-exact, hierarchy, metrics."""

from .correlation import (
    ScoreMatrix,
    correlation_score,
    group_score,
    partition_score,
)
from .exact import all_partitions, exact_best_partition, exact_top_partitions
from .hierarchical import (
    Hierarchy,
    HierarchyNode,
    agglomerate,
    divide_and_merge,
    top_r_frontiers,
)
from .lp import LpResult, lp_cluster
from .metrics import (
    BCubedScores,
    PairwiseScores,
    bcubed_scores,
    groups_from_labels,
    pairwise_f1,
    pairwise_scores,
)
from .pivot import best_of_pivot, pivot_clusters
from .transitive import transitive_closure_clusters

__all__ = [
    "BCubedScores",
    "Hierarchy",
    "HierarchyNode",
    "LpResult",
    "PairwiseScores",
    "ScoreMatrix",
    "agglomerate",
    "all_partitions",
    "bcubed_scores",
    "best_of_pivot",
    "correlation_score",
    "divide_and_merge",
    "exact_best_partition",
    "exact_top_partitions",
    "group_score",
    "groups_from_labels",
    "lp_cluster",
    "pairwise_f1",
    "pairwise_scores",
    "partition_score",
    "pivot_clusters",
    "top_r_frontiers",
    "transitive_closure_clusters",
]
