"""Transitive-closure clustering baseline (Figure 7's comparator).

Forms duplicate groups as connected components of the positive-score
pairs — the simplest way to turn pairwise scores into a partition, and
the baseline the paper shows agreeing only 92–96% with the exact LP.
"""

from __future__ import annotations

from ..graphs.union_find import UnionFind
from .correlation import ScoreMatrix


def transitive_closure_clusters(
    scores: ScoreMatrix, threshold: float = 0.0
) -> list[list[int]]:
    """Return components of pairs with score > *threshold*, largest first.

    Every position 0..n-1 appears in exactly one output group (isolated
    positions become singletons).
    """
    uf = UnionFind(scores.n)
    for i, j, score in scores.scored_pairs():
        if score > threshold:
            uf.union(i, j)
    return uf.components()
