"""CC-Pivot: randomized pivot approximation for correlation clustering.

Ailon, Charikar and Newman's classic 3-approximation (for +/- edge
weights): pick a random pivot, group it with every remaining item that
scores positively against it, recurse on the rest.  The paper cites this
family of approximations ([10], [14]) as the standard way to optimize
Eq. 1; we provide it both as a comparison point for the segmentation
method and as a fast final-clustering fallback.
"""

from __future__ import annotations

import random

from .correlation import ScoreMatrix, partition_score


def pivot_clusters(
    scores: ScoreMatrix,
    seed: int | None = None,
    threshold: float = 0.0,
) -> list[list[int]]:
    """Return a pivot clustering of positions 0..n-1, largest group first."""
    rng = random.Random(seed)
    remaining = list(range(scores.n))
    rng.shuffle(remaining)
    unassigned = set(remaining)
    clusters: list[list[int]] = []
    for pivot in remaining:
        if pivot not in unassigned:
            continue
        unassigned.remove(pivot)
        cluster = [pivot]
        # Only explicitly scored neighbors can exceed a threshold >= 0.
        for j in scores.scored_neighbors(pivot):
            if j in unassigned and scores.get(pivot, j) > threshold:
                cluster.append(j)
                unassigned.remove(j)
        clusters.append(cluster)
    clusters.sort(key=len, reverse=True)
    return clusters


def best_of_pivot(
    scores: ScoreMatrix,
    n_restarts: int = 5,
    seed: int = 0,
    threshold: float = 0.0,
) -> list[list[int]]:
    """Run :func:`pivot_clusters` *n_restarts* times; keep the best Eq. 1 score."""
    if n_restarts < 1:
        raise ValueError(f"n_restarts must be >= 1, got {n_restarts}")
    best: list[list[int]] | None = None
    best_score = float("-inf")
    for restart in range(n_restarts):
        clusters = pivot_clusters(scores, seed=seed + restart, threshold=threshold)
        score = partition_score(clusters, scores)
        if score > best_score:
            best = clusters
            best_score = score
    assert best is not None
    return best
