"""Partition agreement metrics.

Figure 7 measures "pairwise F1 ... which treats as positive any pair of
records that appears in the same cluster in the [reference], and negative
otherwise".  Computed set-wise (no O(n^2) pair scan): the true-positive
count is the sum over intersection cells of the two partitions.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class PairwiseScores:
    """Pairwise precision / recall / F1 between two partitions."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    predicted_pairs: int
    reference_pairs: int


def _pair_count(sizes: Sequence[int]) -> int:
    return sum(s * (s - 1) // 2 for s in sizes)


def _membership(partition: Sequence[Sequence[int]]) -> dict[int, int]:
    member_of: dict[int, int] = {}
    for index, group in enumerate(partition):
        for item in group:
            if item in member_of:
                raise ValueError(f"item {item} appears in two groups")
            member_of[item] = index
    return member_of


def pairwise_scores(
    predicted: Sequence[Sequence[int]], reference: Sequence[Sequence[int]]
) -> PairwiseScores:
    """Return pairwise P/R/F1 of *predicted* against *reference*.

    Items appearing in only one of the partitions are treated as
    singletons in the other (contributing no pairs there).
    """
    predicted_member = _membership(predicted)
    reference_member = _membership(reference)

    cell_sizes: Counter[tuple[int, int]] = Counter()
    for item, predicted_group in predicted_member.items():
        reference_group = reference_member.get(item)
        if reference_group is not None:
            cell_sizes[(predicted_group, reference_group)] += 1
    true_positives = _pair_count(list(cell_sizes.values()))

    predicted_pairs = _pair_count([len(g) for g in predicted])
    reference_pairs = _pair_count([len(g) for g in reference])
    precision = true_positives / predicted_pairs if predicted_pairs else 1.0
    recall = true_positives / reference_pairs if reference_pairs else 1.0
    if precision + recall == 0:
        f1 = 0.0
    else:
        f1 = 2 * precision * recall / (precision + recall)
    return PairwiseScores(
        precision=precision,
        recall=recall,
        f1=f1,
        true_positives=true_positives,
        predicted_pairs=predicted_pairs,
        reference_pairs=reference_pairs,
    )


def pairwise_f1(
    predicted: Sequence[Sequence[int]], reference: Sequence[Sequence[int]]
) -> float:
    """Shorthand for ``pairwise_scores(...).f1``."""
    return pairwise_scores(predicted, reference).f1


@dataclass(frozen=True)
class BCubedScores:
    """B-cubed precision / recall / F1 between two partitions."""

    precision: float
    recall: float
    f1: float


def bcubed_scores(
    predicted: Sequence[Sequence[int]], reference: Sequence[Sequence[int]]
) -> BCubedScores:
    """Return B-cubed P/R/F1 of *predicted* against *reference*.

    B³ averages, per item, the fraction of its predicted cluster that
    shares its reference cluster (precision) and vice versa (recall) —
    the entity-resolution standard that, unlike pairwise F1, does not let
    a few huge clusters dominate.  Items present in only one partition
    are ignored (they have no counterpart to be judged against).
    """
    predicted_member = _membership(predicted)
    reference_member = _membership(reference)
    common = set(predicted_member) & set(reference_member)
    if not common:
        return BCubedScores(precision=1.0, recall=1.0, f1=1.0)

    # Sizes of each intersection cell and of each cluster restricted to
    # the common item set.
    cell: Counter[tuple[int, int]] = Counter()
    predicted_size: Counter[int] = Counter()
    reference_size: Counter[int] = Counter()
    for item in common:
        p = predicted_member[item]
        r = reference_member[item]
        cell[(p, r)] += 1
        predicted_size[p] += 1
        reference_size[r] += 1

    precision = 0.0
    recall = 0.0
    for (p, r), count in cell.items():
        # Each of the `count` items in this cell contributes
        # count/|predicted cluster| to precision and count/|reference
        # cluster| to recall.
        precision += count * count / predicted_size[p]
        recall += count * count / reference_size[r]
    precision /= len(common)
    recall /= len(common)
    if precision + recall == 0:
        f1 = 0.0
    else:
        f1 = 2 * precision * recall / (precision + recall)
    return BCubedScores(precision=precision, recall=recall, f1=f1)


def groups_from_labels(labels: Sequence[int]) -> list[list[int]]:
    """Turn per-item labels into a partition, largest group first."""
    by_label: dict[int, list[int]] = defaultdict(list)
    for item, label in enumerate(labels):
        by_label[label].append(item)
    return sorted(by_label.values(), key=len, reverse=True)
