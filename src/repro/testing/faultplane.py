"""The unified fault plane: seeded infrastructure faults for every layer.

PRs 2 and 3 each grew their own injection harness — predicate chaos
(:mod:`repro.testing.chaos`) sabotages *user code*, crash points
(:mod:`repro.testing.crashpoints`) truncate the *on-disk log* — but the
faults a deployment actually throws at the engine live between those
two: the WAL write that returns ``EIO``, the disk that fills mid-
stream, the fsync that fails, the shared-memory segment that cannot be
attached, the worker process that dies or hangs.  :class:`FaultPlane`
injects exactly those, through the :func:`repro.core.retry.fire_fault`
hook the hardened production paths call at each fault site.

Determinism follows the chaos harness discipline: every potential
fault is an independent :func:`hashlib.blake2b` draw of
``(seed, site, sorted ids)``, so a pinned seed reproduces the same
fault schedule forever, regardless of evaluation order.  The ids
include the **attempt number**, so a transient fault injected on
attempt 0 deterministically clears (or not) on the retry — unless the
plane is built with ``persistent=True``, in which case the draw
ignores the attempt and the fault site fails every time it is asked.

The plane also *subsumes* the older harnesses as entry points:
:meth:`FaultPlane.chaos_plan` derives a predicate-level
:class:`~repro.testing.chaos.FaultPlan` from the same seed and
:meth:`FaultPlane.wrap_levels` applies it, so one seed can drive
user-code faults, storage faults, and process faults in a single run.

Worker-site faults (``worker.crash`` / ``worker.hang``) fire inside
forked children — the hook is installed in the parent before the pool
forks, so children inherit it.  Their injection *counts* consequently
stay in the child and are not reflected in the parent's
:attr:`FaultPlane.injected` tally; storage and shared-memory sites,
which fire in the parent, are counted exactly.
"""

from __future__ import annotations

import errno
import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..core.retry import (
    BREAKERS,
    SITE_CHECKPOINT_WRITE,
    SITE_SHM_ATTACH,
    SITE_SHM_CREATE,
    SITE_WAL_APPEND,
    SITE_WAL_FSYNC,
    SITE_WORKER_CRASH,
    SITE_WORKER_HANG,
    install_fault_hook,
)
from .chaos import FaultPlan, chaos_levels

#: Denominator turning a 64-bit hash prefix into a uniform draw in [0, 1).
_DRAW_SPACE = float(2**64)

#: Exit status of a fault-crashed worker (distinct from real signals).
WORKER_CRASH_EXIT = 17

#: Hard cap on an injected hang: the parallel layer's shard timeout must
#: fire first, but a containment regression must still terminate.
MAX_HANG_SECONDS = 30.0


@dataclass
class FaultPlane:
    """Deterministic infrastructure-fault schedule for one run.

    Rates are probabilities in ``[0, 1]`` drawn independently per
    (site, ids) — see the module docstring for the determinism and
    retry semantics.

    Attributes:
        seed: Root of every fault draw; change it to reshuffle faults.
        wal_append_rate: Fraction of WAL entry writes that fail with a
            transient ``EIO`` (the retry layer's bread and butter).
        wal_enospc_rate: Fraction of WAL entry writes that fail with
            ``ENOSPC`` — *not* retryable; the store suspends journaling
            and flags ``durability_degraded`` instead of crashing.
        wal_fsync_rate: Fraction of per-append fsyncs that fail with
            ``EIO``.
        checkpoint_rate: Fraction of checkpoint writes that fail with
            ``EIO`` mid-write (the tmp file may be left behind; the
            prior checkpoint must survive untouched).
        shm_create_rate: Fraction of shared-memory segment creations
            that fail (parent side; the batch path must fall back).
        shm_attach_rate: Fraction of shared-memory attaches that fail
            (worker side; retried, then the shard degrades serially).
        worker_crash_rate: Fraction of shard executions whose worker
            process exits hard (``os._exit``) mid-shard.
        worker_hang_rate: Fraction of shard executions whose worker
            sleeps ``hang_seconds`` — long enough to trip the parent's
            shard timeout, bounded so nothing hangs forever.
        hang_seconds: Injected hang duration (capped at
            :data:`MAX_HANG_SECONDS`).
        persistent: Ignore the attempt number in fault draws, so a
            faulted site keeps failing across retries — the
            "infrastructure is actually down" scenario that must end in
            a degraded answer, not a wrong one.
    """

    seed: int = 0
    wal_append_rate: float = 0.0
    wal_enospc_rate: float = 0.0
    wal_fsync_rate: float = 0.0
    checkpoint_rate: float = 0.0
    shm_create_rate: float = 0.0
    shm_attach_rate: float = 0.0
    worker_crash_rate: float = 0.0
    worker_hang_rate: float = 0.0
    hang_seconds: float = 1.0
    persistent: bool = False
    injected: dict = field(default_factory=dict, repr=False, compare=False)

    _RATES = {
        SITE_WAL_APPEND: "wal_append_rate",
        SITE_WAL_FSYNC: "wal_fsync_rate",
        SITE_CHECKPOINT_WRITE: "checkpoint_rate",
        SITE_SHM_CREATE: "shm_create_rate",
        SITE_SHM_ATTACH: "shm_attach_rate",
        SITE_WORKER_CRASH: "worker_crash_rate",
        SITE_WORKER_HANG: "worker_hang_rate",
    }

    def __post_init__(self) -> None:
        for rate_name in self._RATES.values():
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{rate_name} must be in [0, 1], got {rate}")
        if not 0.0 <= self.wal_enospc_rate <= 1.0:
            raise ValueError(
                f"wal_enospc_rate must be in [0, 1], got {self.wal_enospc_rate}"
            )
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be >= 0")
        self._metrics = None

    # -- draws --------------------------------------------------------

    def draw(self, salt: str, ids: dict) -> float:
        """Uniform [0, 1) draw, a pure function of (seed, salt, ids)."""
        if self.persistent:
            ids = {k: v for k, v in ids.items() if k != "attempt"}
        ids_key = ",".join(f"{k}={ids[k]}" for k in sorted(ids))
        digest = hashlib.blake2b(
            f"{self.seed}|{salt}|{ids_key}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") / _DRAW_SPACE

    # -- the hook -----------------------------------------------------

    def hook(self, site: str, ids: dict) -> None:
        """Fault-hook body: maybe inject at *site* (see fire_fault)."""
        if site == SITE_WAL_APPEND:
            # ENOSPC and EIO are independent draws; ENOSPC wins ties
            # because it is the fault retries cannot paper over.
            if (
                self.wal_enospc_rate
                and self.draw("wal.enospc", ids) < self.wal_enospc_rate
            ):
                self._record(site, ids, kind="enospc")
                raise OSError(errno.ENOSPC, "injected: no space left on device")
            if (
                self.wal_append_rate
                and self.draw(site, ids) < self.wal_append_rate
            ):
                self._record(site, ids, kind="eio")
                raise OSError(errno.EIO, "injected: WAL write I/O error")
            return
        rate_name = self._RATES.get(site)
        rate = getattr(self, rate_name) if rate_name else 0.0
        if not rate or self.draw(site, ids) >= rate:
            return
        if site == SITE_WORKER_CRASH:
            # Counted before dying so single-process tests still see it;
            # in a real forked worker the tally dies with the child.
            self._record(site, ids, kind="crash")
            os._exit(WORKER_CRASH_EXIT)
        if site == SITE_WORKER_HANG:
            self._record(site, ids, kind="hang")
            time.sleep(min(self.hang_seconds, MAX_HANG_SECONDS))
            return
        self._record(site, ids, kind="eio")
        if site == SITE_WAL_FSYNC:
            raise OSError(errno.EIO, "injected: fsync I/O error")
        if site == SITE_CHECKPOINT_WRITE:
            raise OSError(errno.EIO, "injected: checkpoint write I/O error")
        if site == SITE_SHM_CREATE:
            raise OSError(
                errno.ENOMEM, "injected: cannot allocate shared memory"
            )
        if site == SITE_SHM_ATTACH:
            raise FileNotFoundError(
                errno.ENOENT, "injected: shared memory segment not found"
            )

    def _record(self, site: str, ids: dict, kind: str) -> None:
        self.injected[site] = self.injected.get(site, 0) + 1
        metrics = self._metrics
        if metrics is not None and metrics.enabled:
            metrics.counter(
                "repro_faults_injected_total", site=site, kind=kind
            ).inc()

    @property
    def total_injected(self) -> int:
        """Parent-side injection count across all sites."""
        return sum(self.injected.values())

    # -- lifecycle ----------------------------------------------------

    @contextmanager
    def active(self, metrics=None):
        """Install this plane as the process fault hook for the block.

        Restores the previous hook on exit and resets the process-wide
        circuit breakers (:data:`repro.core.retry.BREAKERS`) both ways,
        so one armed test cannot leak tripped breakers into the next.
        Optionally attaches a metrics registry so injections surface as
        ``repro_faults_injected_total{site,kind}``.
        """
        self._metrics = metrics
        BREAKERS.reset()
        previous = install_fault_hook(self.hook)
        try:
            yield self
        finally:
            install_fault_hook(previous)
            BREAKERS.reset()
            self._metrics = None

    # -- bridges to the older harnesses -------------------------------

    def chaos_plan(self, **rates) -> FaultPlan:
        """A predicate-level :class:`~repro.testing.chaos.FaultPlan`
        rooted at this plane's seed (``error_rate=``, ``stall_rate=``,
        ... keywords pass through)."""
        return FaultPlan(seed=self.seed, **rates)

    def wrap_levels(self, levels, roles: str = "both", **rates):
        """Sabotage *levels* with a same-seed chaos plan — the PR 2
        harness entry point, driven from the unified plane."""
        return chaos_levels(levels, self.chaos_plan(**rates), roles=roles)
