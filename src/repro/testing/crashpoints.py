"""Crash-point injection harness for the durable stream state layer.

The durability contract (``docs/robustness.md``): a crash at **any byte
offset** of the write-ahead log must restore to a state identical to
replaying the surviving prefix of inserts.  This harness checks that
exhaustively instead of anecdotally:

1. run a seeded stream into a state directory (optionally taking
   checkpoints along the way);
2. enumerate every WAL entry boundary, plus mid-entry offsets, as
   crash points;
3. for each point, clone the state directory, truncate the crashed
   segment at that offset, delete every file that did not yet exist at
   crash time (later segments, later checkpoints), restore, and
   compare the recovered engine against an in-memory reference engine
   that applied exactly the surviving prefix of inserts.

Equality is structural (:func:`stream_fingerprint`): record count,
engine version, the collapsed groups with their member sets and
weights, and the full dead-letter state.  ``restore`` additionally
runs the engine's ``audit`` on every recovered state.
"""

from __future__ import annotations

import shutil
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

from ..core.incremental import IncrementalTopK
from ..core.persistence import (
    DurabilityPolicy,
    _CKPT_PREFIX,
    _CKPT_SUFFIX,
    _list_indexed,
    wal_entry_spans,
)
from ..predicates.base import PredicateLevel

Event = tuple[Mapping[str, str], float]
LevelsFactory = Callable[[], list[PredicateLevel]]


@dataclass(frozen=True)
class CrashPoint:
    """One simulated crash location in the write-ahead log.

    Attributes:
        segment: Name of the WAL segment that was being written.
        offset: Byte offset the segment is truncated to.
        surviving_entries: Insert attempts whose WAL entries fully
            survive the crash (earlier segments plus the complete
            entries before *offset*).
        mid_entry: True when *offset* falls inside an entry (a torn
            write) rather than on a boundary.
    """

    segment: str
    offset: int
    surviving_entries: int
    mid_entry: bool


@dataclass(frozen=True)
class CrashPointResult:
    """Outcome of recovering from one simulated crash."""

    point: CrashPoint
    recovered_entries: int
    ok: bool
    detail: str


def stream_fingerprint(engine: IncrementalTopK) -> tuple:
    """Structural identity of a stream engine's user-visible state."""
    groups = tuple(
        sorted(
            (tuple(sorted(g.member_ids)), g.weight)
            for g in engine.collapsed_groups()
        )
    )
    dead = tuple(
        (tuple(sorted(letter.fields.items())), letter.weight, letter.stage)
        for letter in engine.dead_letters
    )
    return (
        len(engine),
        engine.version,
        groups,
        dead,
        engine.dead_letters_dropped,
    )


def reference_fingerprints(
    make_levels: LevelsFactory, events: Sequence[Event]
) -> list[tuple]:
    """Fingerprint of an uninterrupted in-memory run after each prefix.

    ``result[n]`` is the state after applying the first *n* events —
    the ground truth a recovery from *n* surviving WAL entries must
    reproduce exactly.
    """
    engine = IncrementalTopK(make_levels())
    fingerprints = [stream_fingerprint(engine)]
    for fields, weight in events:
        engine.add(fields, weight)
        fingerprints.append(stream_fingerprint(engine))
    return fingerprints


def write_stream(
    make_levels: LevelsFactory,
    events: Sequence[Event],
    state_dir: str | Path,
    *,
    segment_bytes: int = 4096,
    checkpoint_every: int = 0,
    fsync: bool = False,
    keep_checkpoints: int = 2,
    prune: bool = True,
    store: str = "memory",
) -> IncrementalTopK:
    """Run *events* through a durable engine rooted at *state_dir*.

    The checkpoint-crash sweep passes ``prune=False`` (and a generous
    *keep_checkpoints*) so the full WAL and every checkpoint survive,
    keeping each checkpoint-write moment reconstructible from the
    final directory.  With ``store="columnar"`` checkpoints compact to
    mapped sidecar files; the crash simulators leave sidecars of
    deleted checkpoints in place, which is exactly the shape a real
    crash produces (the sidecar is written *before* its checkpoint).
    """
    policy = DurabilityPolicy(
        state_dir=state_dir,
        segment_bytes=segment_bytes,
        fsync=fsync,
        keep_checkpoints=keep_checkpoints,
    )
    engine = IncrementalTopK(make_levels(), durability=policy, store=store)
    for position, (fields, weight) in enumerate(events, start=1):
        engine.add(fields, weight)
        if checkpoint_every and position % checkpoint_every == 0:
            engine.checkpoint(prune=prune)
    engine.close()
    return engine


def enumerate_crash_points(
    state_dir: str | Path, mid_entry_per_segment: int = 3
) -> list[CrashPoint]:
    """Every entry boundary plus mid-entry offsets, across all segments."""
    points: list[CrashPoint] = []
    for path, first_index, spans in wal_entry_spans(state_dir):
        points.append(
            CrashPoint(
                segment=path.name,
                offset=0,
                surviving_entries=first_index,
                mid_entry=False,
            )
        )
        for position, (_start, end) in enumerate(spans):
            points.append(
                CrashPoint(
                    segment=path.name,
                    offset=end,
                    surviving_entries=first_index + position + 1,
                    mid_entry=False,
                )
            )
        # Torn-write offsets: mid-payload cuts spread across the
        # segment, plus a cut inside the frame header and a one-byte-
        # short cut on the final entry — at least `mid_entry_per_segment`
        # distinct torn offsets per segment.
        if spans:
            n = len(spans)
            torn: list[tuple[int, int]] = []  # (entry position, offset)
            for pick in sorted({0, n // 2, n - 1})[:mid_entry_per_segment]:
                start, end = spans[pick]
                mid = start + 8 + (end - start - 8) // 2
                torn.append((pick, mid))
            last_start, last_end = spans[-1]
            torn.append((n - 1, last_start + 4))  # inside the length/CRC header
            torn.append((n - 1, last_end - 1))  # one byte short of complete
            for pick, offset in torn:
                start, end = spans[pick]
                points.append(
                    CrashPoint(
                        segment=path.name,
                        offset=min(max(offset, start + 1), end - 1),
                        surviving_entries=first_index + pick,
                        mid_entry=True,
                    )
                )
    # Deduplicate (tiny entries can collapse several cuts onto one byte).
    unique = {(p.segment, p.offset): p for p in points}
    return sorted(unique.values(), key=lambda p: (p.segment, p.offset))


def simulate_crash(
    state_dir: str | Path, scratch_dir: str | Path, point: CrashPoint
) -> Path:
    """Clone *state_dir* as it would look after crashing at *point*.

    Truncates the crashed segment, removes WAL segments and checkpoints
    that had not been written yet at crash time, and returns the clone.
    """
    source = Path(state_dir)
    clone = Path(scratch_dir) / f"crash-{point.segment}-{point.offset}"
    if clone.exists():
        shutil.rmtree(clone)
    shutil.copytree(source, clone)
    crashed = clone / point.segment
    with open(crashed, "r+b") as handle:
        handle.truncate(point.offset)
    for other in sorted(clone.iterdir()):
        if other.name > point.segment and other.name.startswith("wal-"):
            other.unlink()
    for entries, path in _list_indexed(clone, _CKPT_PREFIX, _CKPT_SUFFIX):
        if entries > point.surviving_entries:
            path.unlink()
    return clone


@dataclass(frozen=True)
class CheckpointCrashPoint:
    """One simulated crash *during* a checkpoint write.

    The write protocol is tmp file → fsync → rename; a crash before the
    rename leaves the previous checkpoint as the newest complete one
    and a ``.tmp`` file of arbitrary completeness lying around.

    Attributes:
        checkpoint: Name of the checkpoint file being written.
        entries: WAL entries the interrupted checkpoint would have
            covered (the WAL is complete through this entry at crash
            time — appends resume only after the checkpoint call
            returns).
        tmp_bytes: Size of the leftover ``.tmp`` file (0 = crashed
            before any byte reached it; full size = crashed between
            fsync and rename).
        complete: True when the tmp file holds the full checkpoint
            (rename was the only step missing) — recovery must *still*
            ignore it.
    """

    checkpoint: str
    entries: int
    tmp_bytes: int
    complete: bool


@dataclass(frozen=True)
class CheckpointCrashResult:
    """Outcome of recovering from one mid-checkpoint crash."""

    point: CheckpointCrashPoint
    recovered_entries: int
    ok: bool
    detail: str


def simulate_checkpoint_crash(
    state_dir: str | Path, scratch_dir: str | Path, point: CheckpointCrashPoint
) -> Path:
    """Clone *state_dir* as it looked when *point*'s write was cut short.

    Rewinds the directory to the moment ``checkpoint()`` was called at
    entry ``point.entries``: later checkpoints and the interrupted one
    are gone, a ``.tmp`` of ``tmp_bytes`` stands in its place, and the
    WAL is truncated back to exactly ``point.entries`` entries.
    Requires a stream written with pruning disabled (high
    ``keep_checkpoints``), so the rewind loses nothing.
    """
    source = Path(state_dir)
    clone = (
        Path(scratch_dir)
        / f"ckpt-crash-{point.checkpoint}-{point.tmp_bytes}"
    )
    if clone.exists():
        shutil.rmtree(clone)
    shutil.copytree(source, clone)
    blob = (clone / point.checkpoint).read_bytes()
    for entries, path in _list_indexed(clone, _CKPT_PREFIX, _CKPT_SUFFIX):
        if entries >= point.entries:
            path.unlink()
    tmp = clone / (point.checkpoint + ".tmp")
    tmp.write_bytes(blob[: point.tmp_bytes])
    # Rewind the WAL to the checkpoint moment: entries >= point.entries
    # had not been appended yet.
    for path, first_index, spans in wal_entry_spans(clone):
        if first_index >= point.entries:
            path.unlink()
        elif first_index + len(spans) > point.entries:
            cut = spans[point.entries - first_index][0]
            with open(path, "r+b") as handle:
                handle.truncate(cut)
    return clone


def run_checkpoint_crash_sweep(
    make_levels: LevelsFactory,
    events: Sequence[Event],
    state_dir: str | Path,
    scratch_dir: str | Path,
    *,
    segment_bytes: int = 4096,
    checkpoint_every: int = 25,
    store: str = "memory",
) -> list[CheckpointCrashResult]:
    """Crash every checkpoint write at three byte offsets of its tmp file.

    For each checkpoint the stream took, simulate a crash that left the
    tmp file empty, half-written, and fully-written-but-unrenamed.  In
    all three shapes recovery must ignore the tmp, seed from the
    newest *complete* checkpoint (the previous one), replay the WAL to
    exactly the interrupted checkpoint's entry count, and reproduce the
    in-memory reference fingerprint — mid-checkpoint crashes lose
    nothing and corrupt nothing.
    """
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1 for this sweep")
    write_stream(
        make_levels,
        events,
        state_dir,
        segment_bytes=segment_bytes,
        checkpoint_every=checkpoint_every,
        keep_checkpoints=max(1, len(events)),
        prune=False,
        store=store,
    )
    references = reference_fingerprints(make_levels, events)
    results: list[CheckpointCrashResult] = []
    checkpoints = _list_indexed(Path(state_dir), _CKPT_PREFIX, _CKPT_SUFFIX)
    for entries, path in checkpoints:
        size = path.stat().st_size
        prior = [c for c, _p in checkpoints if c < entries]
        expected_checkpoint = max(prior) if prior else 0
        for tmp_bytes in sorted({0, size // 2, size}):
            point = CheckpointCrashPoint(
                checkpoint=path.name,
                entries=entries,
                tmp_bytes=tmp_bytes,
                complete=tmp_bytes == size,
            )
            clone = simulate_checkpoint_crash(state_dir, scratch_dir, point)
            try:
                recovered = IncrementalTopK.restore(
                    clone, make_levels(), store=store
                )
            except Exception as exc:  # noqa: BLE001 — report, don't crash
                results.append(
                    CheckpointCrashResult(
                        point, -1, False, f"restore raised {exc!r}"
                    )
                )
                shutil.rmtree(clone)
                continue
            fingerprint = stream_fingerprint(recovered)
            info = recovered.last_recovery
            recovered.close()
            shutil.rmtree(clone)
            if recovered.entries_applied != entries:
                ok, detail = False, (
                    f"recovered {recovered.entries_applied} entries, "
                    f"expected {entries}"
                )
            elif info.checkpoint_entries != expected_checkpoint:
                ok, detail = False, (
                    f"recovery seeded from checkpoint at entry "
                    f"{info.checkpoint_entries}, expected the last "
                    f"complete one at {expected_checkpoint}"
                )
            elif fingerprint != references[entries]:
                ok, detail = False, (
                    "recovered state differs from surviving-prefix replay"
                )
            else:
                ok, detail = True, "ok"
            results.append(
                CheckpointCrashResult(
                    point, recovered.entries_applied, ok, detail
                )
            )
    return results


def run_crash_sweep(
    make_levels: LevelsFactory,
    events: Sequence[Event],
    state_dir: str | Path,
    scratch_dir: str | Path,
    *,
    segment_bytes: int = 4096,
    checkpoint_every: int = 0,
    mid_entry_per_segment: int = 3,
    store: str = "memory",
) -> list[CrashPointResult]:
    """The full crash-point sweep; see the module docstring.

    Returns one result per crash point; ``ok`` is True when the
    recovered state's fingerprint equals the in-memory reference for
    the surviving prefix (recovery's own audit having passed).

    Crash points older than the data the retention policy kept are
    skipped: once a later checkpoint pruned the segments (or the
    checkpoint) a crash at that moment would have recovered from, the
    final directory can no longer be rewound to that moment — the
    simulated shape would be one no real crash can produce.
    """
    final = write_stream(
        make_levels,
        events,
        state_dir,
        segment_bytes=segment_bytes,
        checkpoint_every=checkpoint_every,
        store=store,
    )
    references = reference_fingerprints(make_levels, events)
    if stream_fingerprint(final) != references[-1]:
        raise AssertionError(
            "durable and in-memory engines diverged before any crash — "
            "the sweep's reference would be meaningless"
        )
    checkpoint_entries = [
        entries
        for entries, _path in _list_indexed(
            Path(state_dir), _CKPT_PREFIX, _CKPT_SUFFIX
        )
    ]
    segments = wal_entry_spans(state_dir)
    first_wal_index = segments[0][1] if segments else 0
    results: list[CrashPointResult] = []
    for point in enumerate_crash_points(state_dir, mid_entry_per_segment):
        recoverable = [
            c for c in checkpoint_entries if c <= point.surviving_entries
        ]
        if first_wal_index > 0 and not any(
            c >= first_wal_index for c in recoverable
        ):
            continue
        clone = simulate_crash(state_dir, scratch_dir, point)
        try:
            recovered = IncrementalTopK.restore(
                clone, make_levels(), store=store
            )
        except Exception as exc:  # noqa: BLE001 — report, don't crash the sweep
            results.append(
                CrashPointResult(point, -1, False, f"restore raised {exc!r}")
            )
            shutil.rmtree(clone)
            continue
        expected_entries = max(
            point.surviving_entries,
            recovered.last_recovery.checkpoint_entries,
        )
        fingerprint = stream_fingerprint(recovered)
        expected = references[expected_entries]
        recovered.close()
        shutil.rmtree(clone)
        if recovered.entries_applied != expected_entries:
            detail = (
                f"recovered {recovered.entries_applied} entries, expected "
                f"{expected_entries}"
            )
            ok = False
        elif fingerprint != expected:
            detail = "recovered state differs from surviving-prefix replay"
            ok = False
        else:
            detail = "ok"
            ok = True
        results.append(
            CrashPointResult(point, recovered.entries_applied, ok, detail)
        )
    return results
