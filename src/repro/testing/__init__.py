"""Test-support utilities shipped with the library.

:mod:`repro.testing.chaos` is the seeded fault-injection harness used by
the chaos test suite and the x8 benchmark to exercise the resilience
layer (:mod:`repro.core.resilience`) under deterministic failures.

:mod:`repro.testing.crashpoints` is the crash-point injection harness
used by the crash-recovery suite and the x9 benchmark to exercise the
durability layer (:mod:`repro.core.persistence`): it truncates the
write-ahead log at every entry boundary (and inside entries) and checks
recovery restores exactly the surviving prefix.
"""

from .chaos import (
    ChaosError,
    ChaosPredicate,
    ChaosScorer,
    FaultPlan,
    chaos_levels,
)
from .crashpoints import (
    CrashPoint,
    CrashPointResult,
    enumerate_crash_points,
    reference_fingerprints,
    run_crash_sweep,
    simulate_crash,
    stream_fingerprint,
    write_stream,
)

__all__ = [
    "ChaosError",
    "ChaosPredicate",
    "ChaosScorer",
    "CrashPoint",
    "CrashPointResult",
    "FaultPlan",
    "chaos_levels",
    "enumerate_crash_points",
    "reference_fingerprints",
    "run_crash_sweep",
    "simulate_crash",
    "stream_fingerprint",
    "write_stream",
]
