"""Test-support utilities shipped with the library.

:mod:`repro.testing.chaos` is the seeded fault-injection harness used by
the chaos test suite and the x8 benchmark to exercise the resilience
layer (:mod:`repro.core.resilience`) under deterministic failures.
"""

from .chaos import (
    ChaosError,
    ChaosPredicate,
    ChaosScorer,
    FaultPlan,
    chaos_levels,
)

__all__ = [
    "ChaosError",
    "ChaosPredicate",
    "ChaosScorer",
    "FaultPlan",
    "chaos_levels",
]
