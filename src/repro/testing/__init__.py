"""Test-support utilities shipped with the library.

:mod:`repro.testing.chaos` is the seeded fault-injection harness used by
the chaos test suite and the x8 benchmark to exercise the resilience
layer (:mod:`repro.core.resilience`) under deterministic failures.

:mod:`repro.testing.crashpoints` is the crash-point injection harness
used by the crash-recovery suite and the x9 benchmark to exercise the
durability layer (:mod:`repro.core.persistence`): it truncates the
write-ahead log at every entry boundary (and inside entries), crashes
checkpoint writes mid-rename, and checks recovery restores exactly the
surviving prefix.

:mod:`repro.testing.faultplane` is the unified fault plane: one seeded
:class:`FaultPlane` hooks every ``fire_fault`` site across the storage
and parallel layers (WAL appends, fsyncs, checkpoint writes, shared-
memory create/attach, worker crash/hang) and bridges to the older chaos
plans, so a single seed drives a whole-system fault schedule.
"""

from .chaos import (
    ChaosError,
    ChaosPredicate,
    ChaosScorer,
    FaultPlan,
    chaos_levels,
)
from .crashpoints import (
    CheckpointCrashPoint,
    CheckpointCrashResult,
    CrashPoint,
    CrashPointResult,
    enumerate_crash_points,
    reference_fingerprints,
    run_checkpoint_crash_sweep,
    run_crash_sweep,
    simulate_checkpoint_crash,
    simulate_crash,
    stream_fingerprint,
    write_stream,
)
from .faultplane import (
    MAX_HANG_SECONDS,
    WORKER_CRASH_EXIT,
    FaultPlane,
)

__all__ = [
    "ChaosError",
    "ChaosPredicate",
    "ChaosScorer",
    "CheckpointCrashPoint",
    "CheckpointCrashResult",
    "CrashPoint",
    "CrashPointResult",
    "FaultPlan",
    "FaultPlane",
    "MAX_HANG_SECONDS",
    "WORKER_CRASH_EXIT",
    "chaos_levels",
    "enumerate_crash_points",
    "reference_fingerprints",
    "run_checkpoint_crash_sweep",
    "run_crash_sweep",
    "simulate_checkpoint_crash",
    "simulate_crash",
    "stream_fingerprint",
    "write_stream",
]
