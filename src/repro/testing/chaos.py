"""Seeded chaos: deterministic fault injection for predicates and scorers.

The resilience layer (:mod:`repro.core.resilience`) promises that user
code which raises, stalls, or lies cannot crash a query, hang it past
its deadline, or push its answer into an unsafe direction.  This module
manufactures exactly such user code, deterministically:

* :class:`FaultPlan` declares *which* faults fire and how often — raise,
  stall, verdict-flip, and keying-error rates, plus one designated
  always-stalling pair.
* :class:`ChaosPredicate` / :class:`ChaosScorer` wrap a well-behaved
  inner predicate/scorer and inject the plan's faults around it.

Determinism is *per pair*, not per call sequence: each potential fault
is drawn from a :func:`hashlib.blake2b` hash of ``(seed, fault-kind,
record ids)``, so the same pair faults identically regardless of
evaluation order, caching, or how many times it is asked.  That makes
chaos runs reproducible across pipeline refactors — a test pinning
``seed=7`` sees the same fault schedule forever.

The wrappers declare ``symmetric = False`` (fault-injected verdicts must
never enter the shared pair-verdict cache) and force
``key_implies_match`` off so every in-block pair actually reaches the
guarded ``evaluate`` where faults fire.
"""

from __future__ import annotations

import hashlib
import time
from collections.abc import Hashable, Iterable
from dataclasses import dataclass

from ..core.records import Record
from ..predicates.base import Predicate
from ..scoring.pairwise import PairwiseScorer

#: Denominator turning a 64-bit hash prefix into a uniform draw in [0, 1).
_DRAW_SPACE = float(2**64)


class ChaosError(RuntimeError):
    """The exception injected by the chaos wrappers."""


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault schedule for one chaos run.

    Rates are probabilities in ``[0, 1]`` applied independently per
    (fault kind, record pair) — drawn from a stable hash, so the same
    pair always faults the same way under the same seed.

    Attributes:
        seed: Root of every fault draw; change it to reshuffle faults.
        error_rate: Fraction of ``evaluate``/``score`` calls that raise
            :class:`ChaosError`.
        stall_rate: Fraction of calls that sleep ``stall_seconds``
            before answering (exceeding a policy's per-call timeout).
        flip_rate: Fraction of predicate calls that return the *negated*
            verdict (a lying predicate — undetectable, but chaos tests
            use it to measure answer-quality decay).
        stall_seconds: Sleep duration for stall faults and the
            designated :attr:`stall_pair`.
        keying_error_rate: Fraction of ``blocking_keys`` calls that
            raise (per record, not per pair).
        stall_pair: Optional ``(record_id, record_id)`` pair whose
            evaluation/scoring always sleeps ``stall_seconds`` —
            the "one pathological slow pair" scenario.
    """

    seed: int = 0
    error_rate: float = 0.0
    stall_rate: float = 0.0
    flip_rate: float = 0.0
    stall_seconds: float = 0.05
    keying_error_rate: float = 0.0
    stall_pair: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        for rate_name in ("error_rate", "stall_rate", "flip_rate", "keying_error_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{rate_name} must be in [0, 1], got {rate}")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be >= 0")

    def draw(self, salt: str, *ids: int) -> float:
        """Uniform [0, 1) draw, a pure function of (seed, salt, ids)."""
        ids_key = ",".join(str(i) for i in sorted(ids))
        digest = hashlib.blake2b(
            f"{self.seed}|{salt}|{ids_key}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") / _DRAW_SPACE

    def is_stall_pair(self, a: int, b: int) -> bool:
        """Whether (a, b) is the designated always-stalling pair."""
        if self.stall_pair is None:
            return False
        return {a, b} == set(self.stall_pair)


class ChaosPredicate(Predicate):
    """Wrap *inner* and inject the plan's faults around its verdicts.

    The fault schedule keys on the two records' ids (order-independent),
    with the *salt* distinguishing wrappers so the same pair can fault
    under the sufficient predicate but not the necessary one.
    """

    #: Chaos verdicts are schedule artifacts — keep them out of the
    #: shared pair-verdict cache.
    symmetric = False

    def __init__(self, inner: Predicate, plan: FaultPlan, salt: str = ""):
        self._inner = inner
        self.plan = plan
        self.salt = salt or inner.name
        self.name = f"chaos[{inner.name}]"
        self.cost = inner.cost
        # Force every in-block pair through evaluate() so faults fire.
        self.key_implies_match = False

    @property
    def inner(self) -> Predicate:
        """The wrapped well-behaved predicate."""
        return self._inner

    def evaluate(self, a: Record, b: Record) -> bool:
        plan = self.plan
        i, j = a.record_id, b.record_id
        if plan.is_stall_pair(i, j):
            time.sleep(plan.stall_seconds)
        elif plan.stall_rate and plan.draw(f"{self.salt}:stall", i, j) < plan.stall_rate:
            time.sleep(plan.stall_seconds)
        if plan.error_rate and plan.draw(f"{self.salt}:raise", i, j) < plan.error_rate:
            raise ChaosError(f"{self.name} injected failure on pair ({i}, {j})")
        verdict = self._inner.evaluate(a, b)
        if plan.flip_rate and plan.draw(f"{self.salt}:flip", i, j) < plan.flip_rate:
            return not verdict
        return verdict

    def blocking_keys(self, record: Record) -> Iterable[Hashable]:
        plan = self.plan
        if (
            plan.keying_error_rate
            and plan.draw(f"{self.salt}:keying", record.record_id)
            < plan.keying_error_rate
        ):
            raise ChaosError(
                f"{self.name} injected keying failure on record {record.record_id}"
            )
        return self._inner.blocking_keys(record)


class ChaosScorer(PairwiseScorer):
    """Wrap a scorer and inject raise/stall faults around its scores."""

    def __init__(self, inner: PairwiseScorer, plan: FaultPlan, salt: str = "scorer"):
        self._inner = inner
        self.plan = plan
        self.salt = salt

    def score(self, a: Record, b: Record) -> float:
        plan = self.plan
        i, j = a.record_id, b.record_id
        if plan.is_stall_pair(i, j):
            time.sleep(plan.stall_seconds)
        elif plan.stall_rate and plan.draw(f"{self.salt}:stall", i, j) < plan.stall_rate:
            time.sleep(plan.stall_seconds)
        if plan.error_rate and plan.draw(f"{self.salt}:raise", i, j) < plan.error_rate:
            raise ChaosError(f"chaos scorer injected failure on pair ({i}, {j})")
        return self._inner.score(a, b)


def chaos_levels(levels, plan: FaultPlan, roles: str = "both"):
    """Wrap every level's predicates in :class:`ChaosPredicate`.

    Args:
        levels: The well-behaved :class:`~repro.predicates.base.PredicateLevel`
            list to sabotage.
        plan: The fault schedule.
        roles: Which role to inject into: ``"sufficient"``,
            ``"necessary"``, or ``"both"``.

    Each wrapper gets a distinct salt (role + level index) so faults are
    independent across roles and levels.
    """
    from ..predicates.base import PredicateLevel

    if roles not in ("sufficient", "necessary", "both"):
        raise ValueError(
            f"roles must be 'sufficient', 'necessary' or 'both', got {roles!r}"
        )
    wrapped = []
    for index, level in enumerate(levels):
        sufficient = level.sufficient
        necessary = level.necessary
        if roles in ("sufficient", "both"):
            sufficient = ChaosPredicate(sufficient, plan, salt=f"S{index}")
        if roles in ("necessary", "both"):
            necessary = ChaosPredicate(necessary, plan, salt=f"N{index}")
        wrapped.append(
            PredicateLevel(
                sufficient=sufficient, necessary=necessary, name=level.name
            )
        )
    return wrapped
