"""Uncertainty-aware Top-K queries: count intervals and membership mass.

The count-query engine (:mod:`repro.core.topk`) surfaces the single
best answer (or R ranked alternatives).  This module opens the
consensus-style contract on top of the same machinery: enumerate the R
highest-scoring dedup worlds, weight them by normalized Gibbs mass, and
report per entity a ``[count_lo, count_hi]`` interval, an expected
count, and the probability mass of top-K membership — with a
Bernecker-style bound pruning candidates whose membership provably
cannot reach the reporting threshold.

See ``docs/uncertainty.md`` for the answer contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..clustering.correlation import ScoreMatrix, partition_score
from ..core.pruned_dedup import PrunedDedupResult, pruned_dedup
from ..core.records import GroupSet, RecordStore
from ..core.resilience import (
    ExecutionPolicy,
    ExecutionState,
    GuardedScorer,
    ResilienceExhausted,
    StageRecord,
)
from ..core.topk import _entity, group_score_matrix
from ..core.verification import VerificationContext
from ..embedding.greedy import LinearEmbedding, greedy_embedding
from ..embedding.segmentation import auto_max_span, best_partition
from ..observability.metrics import SIZE_BUCKETS
from ..predicates.base import PredicateLevel
from ..scoring.pairwise import PairwiseScorer
from .intervals import aggregate_worlds
from .worlds import World, enumerate_worlds, world_from_partition, world_masses

__all__ = [
    "EntityInterval",
    "IntervalQueryResult",
    "topk_interval_query",
    "membership_probabilities",
    "interval_over_groups",
    "interval_from_pruning",
    "world_model",
]


@dataclass(frozen=True)
class EntityInterval:
    """One candidate top-K entity with its uncertainty envelope.

    Attributes:
        label: Display name — the anchor group representative's field.
        representative_id: Record id of the anchor representative.
        record_ids: Records of every collapsed group merged into the
            entity (groups co-clustered in all enumerated worlds).
        count_lo / count_hi: Minimum / maximum weight of the entity's
            containing cluster across the enumerated worlds; every
            enumerated world's exact count lies inside.
        expected_count: Mass-weighted mean cluster weight.
        membership_probability: Total mass of worlds where the entity
            is in the top K.
        slot_probabilities: Per-rank mass (length K); each slot's
            probabilities sum to at most 1 across entities.
        positions: The collapsed-group indices merged into the entity
            (the oracle suites map these back to base records).
    """

    label: str
    representative_id: int
    record_ids: tuple[int, ...]
    count_lo: float
    count_hi: float
    expected_count: float
    membership_probability: float
    slot_probabilities: tuple[float, ...]
    positions: tuple[int, ...]


@dataclass
class IntervalQueryResult:
    """Full result of an interval-semantics Top-K query.

    Attributes:
        entities: Candidate entities sorted by membership probability
            descending (ties: wider upper bound first, then positions).
        worlds_requested: The R the caller asked for.
        worlds_enumerated: Worlds actually enumerated (0 when degraded).
        temperature: Gibbs temperature used for world masses.
        pruned_candidates: Candidates cut early by the membership bound.
        exact: True when pruning certified the top K outright — one
            world, every interval collapsed to a point.
        degraded: True when the execution policy stopped the query; the
            entities are then the K heaviest groups of the last
            consistent collapsed state with the widest sound interval
            (lo = certain merged weight, hi = total retained weight) and
            zero membership mass (unknown).
    """

    entities: list[EntityInterval] = field(default_factory=list)
    k: int = 0
    worlds_requested: int = 0
    worlds_enumerated: int = 0
    temperature: float = 1.0
    min_probability: float = 0.0
    pruned_candidates: int = 0
    pruning: PrunedDedupResult | None = None
    exact: bool = False
    degraded: bool = False
    degraded_reason: str = ""

    @property
    def collapsed(self) -> bool:
        """True when every reported interval is a single point."""
        return not self.degraded and all(
            entity.count_lo == entity.count_hi for entity in self.entities
        )


def topk_interval_query(
    store: RecordStore,
    k: int,
    levels: list[PredicateLevel],
    scorer: PairwiseScorer,
    r: int = 8,
    min_probability: float = 0.0,
    label_field: str = "",
    prune_iterations: int = 2,
    max_span: int | None = None,
    aggregate_scores: bool = True,
    alpha: float = 0.75,
    max_thresholds: int = 32,
    temperature: float | None = None,
    prune: bool = True,
    context: VerificationContext | None = None,
    policy: ExecutionPolicy | None = None,
    workers: int | None = None,
) -> IntervalQueryResult:
    """Answer a Top-K query with interval semantics over *store*.

    Mirrors :func:`repro.core.topk.topk_count_query` stage for stage
    (same pruning pipeline, policy containment, worker sharding, and
    record-store kinds) but replaces the ranked-answer output with
    per-entity count intervals and membership probabilities over the R
    highest-scoring worlds.

    Args:
        r: Number of possible worlds to enumerate.
        min_probability: Report only entities whose top-K membership
            mass reaches this threshold; also the cutoff the
            Bernecker-style bound prunes against.
        temperature: Gibbs temperature for world masses; defaults to a
            quarter of the enumerated score spread, floored at 1.
        prune: Disable the (answer-preserving) membership bound when
            False — a verification hook, the output is bit-identical.

    Other arguments match :func:`topk_count_query`.
    """
    _validate(k, r, min_probability)
    if context is None:
        context = VerificationContext()
    metrics = context.metrics
    before = context.counters.snapshot() if metrics.enabled else None
    with context.span("query", kind="interval", k=k, r=r):
        state = policy.start(context.counters) if policy is not None else None
        pruning = pruned_dedup(
            store,
            k,
            levels,
            prune_iterations=prune_iterations,
            context=context,
            execution_state=state,
            workers=workers,
        )
        result = interval_from_pruning(
            pruning,
            k,
            scorer,
            levels[-1].necessary,
            r=r,
            min_probability=min_probability,
            label_field=label_field,
            max_span=max_span,
            aggregate_scores=aggregate_scores,
            alpha=alpha,
            max_thresholds=max_thresholds,
            temperature=temperature,
            prune=prune,
            context=context,
            state=state,
        )
    publish_interval_metrics(context, result, before)
    return result


def membership_probabilities(
    store: RecordStore,
    k: int,
    levels: list[PredicateLevel],
    scorer: PairwiseScorer,
    r: int = 8,
    min_probability: float = 0.0,
    **kwargs,
) -> dict[int, float]:
    """Top-K membership probability per entity representative record id.

    A convenience projection of :func:`topk_interval_query`; accepts the
    same keyword arguments.
    """
    result = topk_interval_query(
        store, k, levels, scorer, r=r, min_probability=min_probability, **kwargs
    )
    return {
        entity.representative_id: entity.membership_probability
        for entity in result.entities
    }


def interval_from_pruning(
    pruning: PrunedDedupResult,
    k: int,
    scorer: PairwiseScorer,
    necessary,
    *,
    r: int,
    min_probability: float = 0.0,
    label_field: str = "",
    max_span: int | None = None,
    aggregate_scores: bool = True,
    alpha: float = 0.75,
    max_thresholds: int = 32,
    temperature: float | None = None,
    prune: bool = True,
    context: VerificationContext | None = None,
    state: ExecutionState | None = None,
) -> IntervalQueryResult:
    """Interval aggregation over an already-pruned group state.

    The shared tail of the batch query, the incremental engine, and the
    server snapshot: handles the degraded, certified-exact, and scored
    paths.  *state* is the execution state threading the caller's policy
    through the scoring stage.
    """
    if context is None:
        context = VerificationContext()
    groups = pruning.groups
    if pruning.degraded:
        return _degraded_interval(groups, k, r, min_probability, label_field, pruning)

    if len(groups) <= k:
        # Pruning certified the answer: a single world, point intervals.
        return _certified_interval(
            groups, k, r, min_probability, label_field, pruning
        )

    guarded = scorer
    if state is not None:
        state.begin_stage()
        guarded = GuardedScorer(scorer, state)
    try:
        with context.span("score", n_groups=len(groups)):
            if state is not None:
                state.check()
            scores = group_score_matrix(
                groups, guarded, necessary, aggregate=aggregate_scores
            )
            if state is not None:
                state.check()
            embedding = greedy_embedding(scores, alpha=alpha)
            if max_span is None:
                max_span = auto_max_span(scores)
            if state is not None:
                state.check()
            with context.span("enumerate_worlds", r=r):
                worlds = enumerate_worlds(
                    scores,
                    embedding,
                    groups.weights(),
                    k,
                    r,
                    max_span=max_span,
                    max_thresholds=max_thresholds,
                )
                if not worlds:
                    # Degenerate threshold structure (the K-th and
                    # (K+1)-th groups tie in every segmentation): fall
                    # back to the best unconstrained segmentation as the
                    # sole world, top-K boundary by canonical order.
                    partition = best_partition(
                        scores, embedding, max_span=max_span
                    )
                    worlds = [
                        world_from_partition(
                            partition,
                            groups.weights(),
                            k,
                            partition_score(partition, scores),
                        )
                    ]
    except ResilienceExhausted as exc:
        pruning.stage_records.append(
            StageRecord("scoring", "score", False, exc.reason)
        )
        return _degraded_interval(
            groups, k, r, min_probability, label_field, pruning, exc.reason
        )
    if state is not None:
        pruning.stage_records.append(StageRecord("scoring", "score", True))

    masses, used_temperature = world_masses(worlds, temperature)
    aggregates, pruned_candidates = aggregate_worlds(
        worlds,
        masses,
        groups.weights(),
        k,
        min_probability=min_probability,
        prune=prune,
    )
    entities = [
        _interval_entity(groups, aggregate, label_field)
        for aggregate in aggregates
    ]
    return IntervalQueryResult(
        entities=entities,
        k=k,
        worlds_requested=r,
        worlds_enumerated=len(worlds),
        temperature=used_temperature,
        min_probability=min_probability,
        pruned_candidates=pruned_candidates,
        pruning=pruning,
        exact=False,
    )


def interval_over_groups(
    groups: GroupSet,
    k: int,
    scorer: PairwiseScorer,
    necessary,
    *,
    r: int = 8,
    min_probability: float = 0.0,
    label_field: str = "",
    max_span: int | None = None,
    aggregate_scores: bool = True,
    alpha: float = 0.75,
    max_thresholds: int = 32,
    temperature: float | None = None,
    prune: bool = True,
    context: VerificationContext | None = None,
) -> IntervalQueryResult:
    """Interval aggregation directly over a prepared :class:`GroupSet`.

    Bypasses the pruning pipeline entirely — the differential suites use
    this to compare the world model against the brute-force oracle on a
    fixed group state.
    """
    _validate(k, r, min_probability)
    pruning = PrunedDedupResult(
        groups=groups, stats=[], n_starting_records=len(groups.store)
    )
    return interval_from_pruning(
        pruning,
        k,
        scorer,
        necessary,
        r=r,
        min_probability=min_probability,
        label_field=label_field,
        max_span=max_span,
        aggregate_scores=aggregate_scores,
        alpha=alpha,
        max_thresholds=max_thresholds,
        temperature=temperature,
        prune=prune,
        context=context,
    )


def world_model(
    groups: GroupSet,
    scorer: PairwiseScorer,
    necessary,
    *,
    aggregate_scores: bool = True,
    alpha: float = 0.75,
    max_span: int | None = None,
) -> tuple[ScoreMatrix, LinearEmbedding, int]:
    """The (scores, embedding, max_span) triple the interval query
    enumerates worlds over — exposed so the brute-force oracle can
    exhaust exactly the same world space."""
    scores = group_score_matrix(
        groups, scorer, necessary, aggregate=aggregate_scores
    )
    embedding = greedy_embedding(scores, alpha=alpha)
    if max_span is None:
        max_span = auto_max_span(scores)
    return scores, embedding, max_span


def publish_interval_metrics(
    context: VerificationContext,
    result: IntervalQueryResult,
    before,
) -> None:
    """Record the interval-query metric family on *context*'s registry."""
    metrics = context.metrics
    if not metrics.enabled:
        return
    metrics.describe(
        "repro_worlds_enumerated_total",
        "Possible dedup worlds enumerated by interval queries",
    )
    metrics.describe(
        "repro_interval_width",
        "Width (count_hi - count_lo) of reported count intervals",
    )
    metrics.describe(
        "repro_probabilistic_prunes_total",
        "Candidates cut early by the membership probability bound",
    )
    metrics.counter("repro_queries_total", kind="interval").inc()
    metrics.counter("repro_worlds_enumerated_total").inc(
        result.worlds_enumerated
    )
    metrics.counter("repro_probabilistic_prunes_total").inc(
        result.pruned_candidates
    )
    width = metrics.histogram("repro_interval_width", buckets=SIZE_BUCKETS)
    for entity in result.entities:
        width.observe(entity.count_hi - entity.count_lo)
    if result.degraded:
        metrics.counter(
            "repro_degraded_queries_total", reason=result.degraded_reason
        ).inc()
    if before is not None:
        context.publish_pipeline_metrics(context.counters.delta(before))


def _validate(k: int, r: int, min_probability: float) -> None:
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if r < 1:
        raise ValueError(f"r (worlds) must be >= 1, got {r}")
    if not 0.0 <= min_probability <= 1.0:
        raise ValueError(
            f"min_probability must be in [0, 1], got {min_probability}"
        )


def _interval_entity(groups: GroupSet, aggregate, label_field: str) -> EntityInterval:
    base = _entity(groups, aggregate.anchor, label_field)
    record_ids: list[int] = []
    for position in aggregate.positions:
        record_ids.extend(groups[position].member_ids)
    return EntityInterval(
        label=base.label,
        representative_id=groups[aggregate.anchor].representative_id,
        record_ids=tuple(sorted(record_ids)),
        count_lo=aggregate.count_lo,
        count_hi=aggregate.count_hi,
        expected_count=aggregate.expected_count,
        membership_probability=aggregate.membership_probability,
        slot_probabilities=aggregate.slot_probabilities,
        positions=aggregate.positions,
    )


def _certified_interval(
    groups: GroupSet,
    k: int,
    r: int,
    min_probability: float,
    label_field: str,
    pruning: PrunedDedupResult,
) -> IntervalQueryResult:
    weights = groups.weights()
    world = world_from_partition(
        [[position] for position in range(len(groups))], weights, k, 0.0
    )
    aggregates, _ = aggregate_worlds(
        [world], [1.0], weights, k, min_probability=min_probability, prune=False
    )
    entities = [
        _interval_entity(groups, aggregate, label_field)
        for aggregate in aggregates
    ]
    return IntervalQueryResult(
        entities=entities,
        k=k,
        worlds_requested=r,
        worlds_enumerated=1,
        temperature=1.0,
        min_probability=min_probability,
        pruning=pruning,
        exact=True,
    )


def _degraded_interval(
    groups: GroupSet,
    k: int,
    r: int,
    min_probability: float,
    label_field: str,
    pruning: PrunedDedupResult,
    reason: str | None = None,
) -> IntervalQueryResult:
    """Anytime answer after policy exhaustion: the K heaviest groups of
    the last consistent collapsed state, each with the widest interval
    still sound for that state — the lower bound is the group's already-
    certified merged weight, the upper bound the total weight of every
    retained group (no consistent completion can exceed it).  Membership
    mass is reported as 0 (unknown: no worlds were enumerated)."""
    weights = groups.weights()
    total = sum(weights)
    entities = []
    for position in range(min(k, len(groups))):
        base = _entity(groups, position, label_field)
        entities.append(
            EntityInterval(
                label=base.label,
                representative_id=groups[position].representative_id,
                record_ids=base.record_ids,
                count_lo=groups[position].weight,
                count_hi=total,
                expected_count=groups[position].weight,
                membership_probability=0.0,
                slot_probabilities=tuple([0.0] * k),
                positions=(position,),
            )
        )
    return IntervalQueryResult(
        entities=entities,
        k=k,
        worlds_requested=r,
        worlds_enumerated=0,
        temperature=0.0,
        min_probability=min_probability,
        pruning=pruning,
        exact=False,
        degraded=True,
        degraded_reason=reason if reason is not None else pruning.degraded_reason,
    )
