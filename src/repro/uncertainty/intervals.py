"""Aggregation of possible worlds into count intervals and membership mass.

Given a canonically-ordered world list and its normalized masses, this
module computes, per entity:

* ``count_lo`` / ``count_hi`` — the minimum / maximum weight of the
  cluster containing the entity across all surviving worlds (an
  envelope that provably contains the exact count of every enumerated
  world);
* ``expected_count`` — the mass-weighted mean cluster weight;
* ``membership_probability`` — the total mass of worlds in which the
  entity's cluster is among the top K;
* ``slot_probabilities`` — per-rank mass, attributed to the cluster's
  representative position so each slot's probabilities sum to at most 1.

Entities are formed by merging base positions that are co-clustered in
*every* world: such positions are indistinguishable under the enumerated
uncertainty and reporting them separately would double-count.

The Bernecker-style pruning bound processes worlds best-first (they
arrive mass-descending because the canonical order is score-descending)
and maintains, per position, the accrued membership mass plus the total
unprocessed suffix mass.  Once ``accrued + remaining`` falls below
``min_probability`` (by more than :data:`_PRUNE_SLACK`, which absorbs
summation-order float drift) the position provably cannot reach the
reporting threshold and is cut without touching the remaining worlds.
The bound is answer-preserving:
a position is only cut when its final membership is guaranteed below the
threshold, so the reported set (and every reported number) is
bit-identical to the run-everything-then-filter computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .worlds import World

__all__ = ["EntityAggregate", "aggregate_worlds"]

#: Slack absorbing the float drift between the forward membership
#: accumulation and the backward suffix sums (different summation
#: orders of the same masses can differ by a few ulps).  A candidate is
#: only cut when it misses the threshold by more than any
#: accumulation-order difference could account for — which is what
#: keeps the bound answer-preserving in float arithmetic, not just on
#: paper (e.g. membership exactly 1.0 at ``min_probability=1.0`` must
#: never be cut by a suffix sum that landed one ulp under 1).
_PRUNE_SLACK = 1e-12


@dataclass(frozen=True)
class EntityAggregate:
    """Aggregated uncertainty for one merged entity.

    ``positions`` are the base (collapsed group) indices merged into the
    entity; ``anchor`` is the heaviest of them (ties to the lowest
    index), the position downstream layers use for labels and
    representative records.
    """

    positions: tuple[int, ...]
    anchor: int
    count_lo: float
    count_hi: float
    expected_count: float
    membership_probability: float
    slot_probabilities: tuple[float, ...]


def aggregate_worlds(
    worlds: Sequence[World],
    masses: Sequence[float],
    weights: Sequence[float],
    k: int,
    *,
    min_probability: float = 0.0,
    prune: bool = True,
) -> tuple[list[EntityAggregate], int]:
    """Aggregate worlds into per-entity intervals and membership mass.

    Returns ``(entities, pruned)`` where ``pruned`` counts the positions
    cut early by the membership bound.  ``prune=False`` disables the
    bound (every world is inspected for every position) and exists so
    tests can prove the bound answer-preserving; the reported entities
    are bit-identical either way.
    """
    if len(worlds) != len(masses):
        raise ValueError(f"{len(masses)} masses for {len(worlds)} worlds")
    if not worlds:
        return [], 0
    n = len(weights)

    # Per-world position -> cluster index lookup.
    position_cluster: list[list[int]] = []
    for world in worlds:
        lookup = [-1] * n
        for index, members in enumerate(world.clusters):
            for member in members:
                lookup[member] = index
        if any(index < 0 for index in lookup):
            raise ValueError("world does not cover every position")
        position_cluster.append(lookup)

    # Exact suffix sums of unprocessed mass, used by the pruning bound.
    suffix = [0.0] * (len(masses) + 1)
    for index in range(len(masses) - 1, -1, -1):
        suffix[index] = suffix[index + 1] + masses[index]

    membership = [0.0] * n
    active = [True] * n
    pruned = 0
    for world_index, (world, mass) in enumerate(zip(worlds, masses)):
        top = world.top_positions()
        for position in range(n):
            if active[position] and position in top:
                membership[position] += mass
        if prune and min_probability > 0.0:
            remaining = suffix[world_index + 1]
            for position in range(n):
                if active[position] and (
                    membership[position] + remaining
                    < min_probability - _PRUNE_SLACK
                ):
                    active[position] = False
                    pruned += 1

    survivors = [
        position
        for position in range(n)
        if active[position]
        and membership[position] > 0.0
        and membership[position] >= min_probability
    ]

    # Merge positions co-clustered in every world: same cluster-id
    # signature across the world list means identical intervals,
    # membership, and slots.
    by_signature: dict[tuple[int, ...], list[int]] = {}
    for position in survivors:
        signature = tuple(
            lookup[position] for lookup in position_cluster
        )
        by_signature.setdefault(signature, []).append(position)

    # Representative of a cluster: its heaviest position, ties to the
    # lowest index (matching the count-query layer's merged-entity rule).
    def representative(members: Sequence[int]) -> int:
        return max(members, key=lambda p: (weights[p], -p))

    entities: list[EntityAggregate] = []
    for signature, positions in by_signature.items():
        positions = sorted(positions)
        anchor = representative(positions)
        count_lo = float("inf")
        count_hi = float("-inf")
        expected = 0.0
        slots = [0.0] * k
        for world_index, (world, mass) in enumerate(zip(worlds, masses)):
            cluster_index = signature[world_index]
            cluster_weight = world.weights[cluster_index]
            count_lo = min(count_lo, cluster_weight)
            count_hi = max(count_hi, cluster_weight)
            expected += mass * cluster_weight
            if cluster_index < world.n_top and cluster_index < k:
                if representative(world.clusters[cluster_index]) == anchor:
                    slots[cluster_index] += mass
        entities.append(
            EntityAggregate(
                positions=tuple(positions),
                anchor=anchor,
                count_lo=count_lo,
                count_hi=count_hi,
                expected_count=expected,
                membership_probability=membership[positions[0]],
                slot_probabilities=tuple(slots),
            )
        )

    entities.sort(
        key=lambda e: (-e.membership_probability, -e.count_hi, e.positions)
    )
    return entities, pruned
