"""Possible dedup worlds derived from the R-best segmentation enumerator.

Section 5's machinery already produces the R highest-scoring
segmentations of the embedded record line; the uncertainty layer treats
each of them as one *possible world*: a full partition of the collapsed
groups plus the identity of its "big" (top-K) segments.  This module
converts segmentations into a normalized :class:`World` representation
and assigns each world a probability mass via the same Gibbs weighting
(``exp(score / T)``) the count-query layer uses for its probability
column.

Worlds are kept in a canonical total order — score descending, then the
cluster layout lexicographically — so every downstream aggregation is
deterministic even under exact score ties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..embedding.greedy import LinearEmbedding
from ..embedding.segmentation import Segmentation, top_r_segmentations
from ..clustering.correlation import ScoreMatrix
from ..scoring.gibbs import gibbs_probabilities

__all__ = [
    "World",
    "world_from_segmentation",
    "world_from_partition",
    "enumerate_worlds",
    "world_masses",
    "default_temperature",
]


@dataclass(frozen=True)
class World:
    """One fully-resolved deduplication outcome.

    ``clusters`` partitions the base positions ``0..n-1`` (collapsed
    group indices); clusters are ordered canonically by weight
    descending then members lexicographically, and the first ``n_top``
    of them are this world's top-K entities.
    """

    clusters: tuple[tuple[int, ...], ...]
    weights: tuple[float, ...]
    n_top: int
    score: float

    def top_positions(self) -> set[int]:
        """Positions that belong to a top-K cluster in this world."""
        members: set[int] = set()
        for index in range(self.n_top):
            members.update(self.clusters[index])
        return members

    def sort_key(self) -> tuple:
        return (-self.score, self.clusters)


def _canonical_clusters(
    groups: Sequence[Sequence[int]], weights: Sequence[float]
) -> tuple[tuple[tuple[int, ...], ...], tuple[float, ...]]:
    entries = []
    for members in groups:
        cluster = tuple(sorted(members))
        entries.append((cluster, sum(weights[m] for m in cluster)))
    entries.sort(key=lambda entry: (-entry[1], entry[0]))
    return (
        tuple(cluster for cluster, _ in entries),
        tuple(weight for _, weight in entries),
    )


def world_from_segmentation(
    segmentation: Segmentation,
    embedding: LinearEmbedding,
    weights: Sequence[float],
) -> World:
    """Convert a DP segmentation (over embedded slots) to a world over
    the original positions."""
    groups = []
    for start, end in segmentation.segments:
        groups.append([embedding.order[i] for i in range(start, end + 1)])
    clusters, cluster_weights = _canonical_clusters(groups, weights)
    n_top = sum(1 for flag in segmentation.big_flags if flag)
    # Big segments have weight strictly above the threshold and small
    # ones at or below it, so the canonical weight-descending order puts
    # every big cluster first; n_top is therefore a prefix length.
    return World(
        clusters=clusters,
        weights=cluster_weights,
        n_top=n_top,
        score=segmentation.score,
    )


def world_from_partition(
    partition: Sequence[Sequence[int]],
    weights: Sequence[float],
    k: int,
    score: float,
) -> World:
    """Build a world from an unconstrained partition (fallback path when
    the threshold DP yields no valid Top-K segmentation).  The top-K
    boundary follows the canonical cluster order."""
    clusters, cluster_weights = _canonical_clusters(partition, weights)
    return World(
        clusters=clusters,
        weights=cluster_weights,
        n_top=min(k, len(clusters)),
        score=score,
    )


def enumerate_worlds(
    scores: ScoreMatrix,
    embedding: LinearEmbedding,
    weights: Sequence[float],
    k: int,
    r: int,
    *,
    max_span: int = 30,
    max_thresholds: int = 32,
) -> list[World]:
    """Enumerate up to *r* highest-scoring worlds, canonically ordered.

    A thin wrapper over :func:`top_r_segmentations`; the DP's output is
    already deterministic under ties, and the returned list for a
    smaller ``r`` is a prefix of the list for a larger ``r`` whenever
    the enumerated scores are distinct.
    """
    segmentations = top_r_segmentations(
        scores,
        embedding,
        list(weights),
        k,
        r,
        max_span=max_span,
        max_thresholds=max_thresholds,
    )
    worlds = [
        world_from_segmentation(seg, embedding, weights)
        for seg in segmentations
    ]
    worlds.sort(key=World.sort_key)
    return worlds


def default_temperature(scores: Sequence[float]) -> float:
    """Gibbs temperature matching the count-query layer: a quarter of
    the enumerated score spread, floored at 1."""
    if not scores:
        return 1.0
    spread = max(scores) - min(scores)
    return max(spread / 4.0, 1.0)


def world_masses(
    worlds: Sequence[World], temperature: float | None = None
) -> tuple[list[float], float]:
    """Normalized Gibbs mass ``exp(score / T)`` per world.

    Masses sum to 1 over the *enumerated* set: the uncertainty layer
    conditions on the R worlds it can see, exactly as the paper's R-best
    answers renormalize over the enumerated segmentations.  Returns the
    masses (parallel to ``worlds``) and the temperature used.
    """
    if not worlds:
        return [], temperature if temperature is not None else 1.0
    scores = [world.score for world in worlds]
    if temperature is None:
        temperature = default_temperature(scores)
    masses = gibbs_probabilities(scores, temperature=temperature)
    return [float(mass) for mass in masses], temperature
