"""Uncertainty-aware answer semantics over imprecise duplicates.

Turns the R-best segmentation enumerator into a possible-worlds model
and answers Top-K queries with per-entity count intervals and
membership probabilities instead of a single ranked list.
"""

from .intervals import EntityAggregate, aggregate_worlds
from .query import (
    EntityInterval,
    IntervalQueryResult,
    interval_from_pruning,
    interval_over_groups,
    membership_probabilities,
    topk_interval_query,
    world_model,
)
from .worlds import (
    World,
    default_temperature,
    enumerate_worlds,
    world_from_partition,
    world_from_segmentation,
    world_masses,
)

__all__ = [
    "EntityAggregate",
    "EntityInterval",
    "IntervalQueryResult",
    "World",
    "aggregate_worlds",
    "default_temperature",
    "enumerate_worlds",
    "interval_from_pruning",
    "interval_over_groups",
    "membership_probabilities",
    "topk_interval_query",
    "world_from_partition",
    "world_from_segmentation",
    "world_masses",
    "world_model",
]
