"""The paper's custom similarity functions (Section 6.1.1).

Two bespoke features feed the final classifier on the citation data:

* **Custom author similarity** — 1.0 when full author names (no initials)
  match exactly; otherwise the maximum IDF of any matching word, scaled
  into [0, 1].
* **Custom co-author similarity** — the author similarity when it is at an
  extreme (0 or 1); otherwise the fraction of matching co-author words.
"""

from __future__ import annotations

from .tfidf import IdfTable
from .tokenize import words


def _is_full_name(tokens: list[str]) -> bool:
    """A "full" name has no single-letter (initial) tokens."""
    return bool(tokens) and all(len(t) > 1 for t in tokens)


def custom_author_similarity(name_a: str, name_b: str, idf: IdfTable) -> float:
    """Return the paper's custom author-field similarity in [0, 1].

    Exact match of two *full* names (names containing no initials) scores
    1.0.  Otherwise the score is the maximum IDF among the words the two
    names share, scaled by the corpus' maximum IDF so the result stays in
    [0, 1]; names sharing no words score 0.0.
    """
    tokens_a = words(name_a)
    tokens_b = words(name_b)
    if tokens_a == tokens_b and _is_full_name(tokens_a):
        return 1.0
    common = set(tokens_a) & set(tokens_b)
    if not common:
        return 0.0
    max_possible = idf.max_idf_bound()
    if max_possible <= 0:
        return 0.0
    score = max(idf.idf(t) for t in common) / max_possible
    # Scaled IDF of a shared-but-not-identical name must stay below the
    # exact-full-match score.
    return min(score, 0.999)


def custom_coauthor_similarity(
    coauthors_a: str, coauthors_b: str, idf: IdfTable
) -> float:
    """Return the paper's custom co-author-field similarity in [0, 1].

    Applies :func:`custom_author_similarity`; when that lands at an extreme
    (0 or 1) the extreme is returned, otherwise the score is the fraction
    of matching co-author words (overlap over the smaller word set).
    """
    base = custom_author_similarity(coauthors_a, coauthors_b, idf)
    if base == 0.0 or base == 1.0:
        return base
    set_a = set(words(coauthors_a))
    set_b = set(words(coauthors_b))
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / min(len(set_a), len(set_b))
