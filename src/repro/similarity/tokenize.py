"""Tokenization utilities used by similarity measures and predicates.

Every predicate and similarity function in the paper operates on one of a
handful of signature sets derived from record fields: lower-cased word
tokens, character n-grams (the paper uses 3-grams throughout), name
initials, and stop-word-filtered word sets.  Keeping the derivations in one
module guarantees that a predicate and the similarity feature that mirrors
it tokenize identically.
"""

from __future__ import annotations

import re
from functools import lru_cache

_WORD_RE = re.compile(r"[a-z0-9]+")

#: Hand-compiled address stop words, mirroring the paper's list of words
#: "commonly seen in addresses" (Section 6.1.3).
ADDRESS_STOP_WORDS = frozenset(
    {
        "street",
        "st",
        "road",
        "rd",
        "house",
        "flat",
        "apartment",
        "apt",
        "no",
        "number",
        "near",
        "opp",
        "opposite",
        "behind",
        "lane",
        "nagar",
        "colony",
        "society",
        "soc",
        "building",
        "bldg",
        "block",
        "plot",
        "sector",
        "floor",
        "main",
        "cross",
        "pune",
        "city",
        "area",
        "post",
        "dist",
        "district",
    }
)


def normalize(text: str) -> str:
    """Lower-case *text* and collapse runs of whitespace to single spaces."""
    return " ".join(text.lower().split())


def words(text: str) -> list[str]:
    """Return the lower-cased alphanumeric word tokens of *text*, in order.

    Punctuation is treated as a separator, so ``"Smith, J."`` yields
    ``["smith", "j"]``.
    """
    return _WORD_RE.findall(text.lower())


def word_set(text: str) -> frozenset[str]:
    """Return the set of lower-cased word tokens of *text*."""
    return frozenset(words(text))


def content_words(text: str, stop_words: frozenset[str]) -> list[str]:
    """Return word tokens of *text* with *stop_words* removed, in order."""
    return [w for w in words(text) if w not in stop_words]


def content_word_set(text: str, stop_words: frozenset[str]) -> frozenset[str]:
    """Return the set of non-stop-word tokens of *text*."""
    return frozenset(content_words(text, stop_words))


def ngrams(text: str, n: int = 3) -> list[str]:
    """Return the character *n*-grams of the normalized *text*, in order.

    The text is normalized first so spacing differences do not perturb the
    grams.  Texts shorter than *n* characters yield the whole text as a
    single gram (so very short names still produce a non-empty signature).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    norm = normalize(text)
    if not norm:
        return []
    if len(norm) <= n:
        return [norm]
    return [norm[i : i + n] for i in range(len(norm) - n + 1)]


def ngram_set(text: str, n: int = 3) -> frozenset[str]:
    """Return the set of character *n*-grams of *text*."""
    return frozenset(ngrams(text, n))


def initials(text: str) -> tuple[str, ...]:
    """Return the first letter of each word token of *text*, in order.

    Numeric-only tokens are skipped: initials are a name signature and the
    paper's predicates compare them on author and student *names*.
    """
    result = []
    for token in words(text):
        if token[0].isalpha():
            result.append(token[0])
    return tuple(result)


def initial_set(text: str) -> frozenset[str]:
    """Return the unordered set of initials of *text*."""
    return frozenset(initials(text))


def sorted_initials_key(text: str) -> str:
    """Return a canonical string key for "initials match exactly".

    Two names whose word-order differs ("Sunita Sarawagi" vs
    "Sarawagi Sunita") still describe the same initials multiset, so the
    key is the sorted concatenation of initials.
    """
    return "".join(sorted(initials(text)))


@lru_cache(maxsize=65536)
def cached_ngram_set(text: str, n: int = 3) -> frozenset[str]:
    """Memoized :func:`ngram_set` for hot predicate loops."""
    return ngram_set(text, n)


@lru_cache(maxsize=65536)
def cached_word_set(text: str) -> frozenset[str]:
    """Memoized :func:`word_set` for hot predicate loops."""
    return word_set(text)


@lru_cache(maxsize=65536)
def cached_content_word_set(text: str, stop_words: frozenset[str]) -> frozenset[str]:
    """Memoized :func:`content_word_set` for hot predicate loops."""
    return content_word_set(text, stop_words)


@lru_cache(maxsize=65536)
def cached_sorted_initials_key(text: str) -> str:
    """Memoized :func:`sorted_initials_key` for hot predicate loops."""
    return sorted_initials_key(text)


@lru_cache(maxsize=65536)
def cached_initial_set(text: str) -> frozenset[str]:
    """Memoized :func:`initial_set` for hot predicate loops."""
    return initial_set(text)
