"""Integer token encoding and batch set-intersection kernels.

The scalar predicate path decides one candidate pair per Python call —
a set intersection, a division, a compare.  At benchmark scale that
per-pair interpreter dispatch *is* the pipeline's cost profile (the
count-filtering postings walk alone dominates Figure-6 timings).  This
module is the substrate of the vectorized alternative:

* :class:`TokenDictionary` maps arbitrary hashable tokens (words,
  n-grams, key tuples) to dense ``int32`` ids at ingest time;
* :class:`EncodedSetCorpus` stores one token set per record in CSR form
  (``indptr``/``token_ids``), so a whole corpus of sets is two flat
  NumPy arrays;
* the kernel functions below compute intersection sizes between one
  probe set and a *block* of candidate rows in O(total candidate
  tokens) NumPy work — no per-pair Python.

Bit-identity contract: the block measures (:func:`overlap_block`,
:func:`jaccard_block`) replicate :mod:`repro.similarity.measures`
exactly, including the both-empty → 1.0 / one-empty → 0.0 conventions
and IEEE-754 division (``int64/int64`` under NumPy true division is the
same correctly-rounded float64 a Python ``/`` produces), so a
vectorized verdict can never differ from the scalar one.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

import numpy as np


class TokenDictionary:
    """Dense ``token -> int32 id`` assignment, first-seen order.

    Ids are assigned on first :meth:`add`; :meth:`lookup_ids` never
    assigns, returning only the ids of already-known tokens (a probe
    token absent from the dictionary cannot intersect any encoded set,
    so dropping it from the *intersection* is exact — callers track the
    probe's full set size separately wherever sizes matter).
    """

    __slots__ = ("_ids",)

    def __init__(self) -> None:
        self._ids: dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, token: Hashable) -> bool:
        return token in self._ids

    def add(self, token: Hashable) -> int:
        """Return the id of *token*, assigning the next free id if new."""
        ids = self._ids
        token_id = ids.get(token)
        if token_id is None:
            token_id = len(ids)
            ids[token] = token_id
        return token_id

    def encode(self, tokens: Iterable[Hashable]) -> np.ndarray:
        """Encode *tokens* (adding new ones) as an int32 id array."""
        add = self.add
        return np.fromiter(
            (add(token) for token in tokens), dtype=np.int32
        )

    def lookup_ids(self, tokens: Iterable[Hashable]) -> np.ndarray:
        """Return ids of the *known* tokens only (no assignment)."""
        ids = self._ids
        return np.fromiter(
            (
                token_id
                for token_id in (ids.get(token) for token in tokens)
                if token_id is not None
            ),
            dtype=np.int32,
        )


class EncodedSetCorpus:
    """A corpus of token sets in CSR form over one :class:`TokenDictionary`.

    ``token_ids[indptr[i]:indptr[i + 1]]`` are the ids of record *i*'s
    set; row length equals the exact set size (sets, so no repeats).
    """

    __slots__ = ("dictionary", "indptr", "token_ids")

    def __init__(
        self,
        dictionary: TokenDictionary,
        indptr: np.ndarray,
        token_ids: np.ndarray,
    ) -> None:
        self.dictionary = dictionary
        self.indptr = indptr
        self.token_ids = token_ids

    @classmethod
    def from_sets(
        cls,
        sets: Sequence[Iterable[Hashable]],
        dictionary: TokenDictionary | None = None,
    ) -> "EncodedSetCorpus":
        """Encode *sets* row by row, growing *dictionary* as needed."""
        dictionary = dictionary if dictionary is not None else TokenDictionary()
        indptr = np.zeros(len(sets) + 1, dtype=np.int64)
        rows: list[np.ndarray] = []
        for position, token_set in enumerate(sets):
            row = dictionary.encode(token_set)
            rows.append(row)
            indptr[position + 1] = indptr[position] + len(row)
        token_ids = (
            np.concatenate(rows) if rows else np.empty(0, dtype=np.int32)
        )
        return cls(dictionary, indptr, token_ids.astype(np.int32, copy=False))

    def __len__(self) -> int:
        return len(self.indptr) - 1

    @property
    def vocabulary_size(self) -> int:
        return len(self.dictionary)

    def row(self, position: int) -> np.ndarray:
        """The token-id array of record *position* (a view)."""
        return self.token_ids[self.indptr[position] : self.indptr[position + 1]]

    def sizes(self) -> np.ndarray:
        """Exact set size per record (int64 array)."""
        return np.diff(self.indptr)


def gather_rows(
    indptr: np.ndarray, data: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate CSR rows *rows* without a Python loop.

    Returns ``(flat, lengths)`` where ``flat`` is the concatenation of
    ``data[indptr[r]:indptr[r+1]]`` for each row in order and
    ``lengths`` the per-row element counts.
    """
    starts = indptr[rows]
    lengths = indptr[rows + np.int64(1)] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=data.dtype), lengths
    out_starts = np.cumsum(lengths) - lengths
    flat_index = np.repeat(starts - out_starts, lengths) + np.arange(
        total, dtype=np.int64
    )
    return data[flat_index], lengths


def intersection_counts(
    probe_ids: np.ndarray,
    indptr: np.ndarray,
    token_ids: np.ndarray,
    rows: np.ndarray,
    scratch: np.ndarray,
) -> np.ndarray:
    """``|probe ∩ row|`` for each CSR row in *rows*, as int64.

    *scratch* is a reusable bool array of at least vocabulary size; it
    is restored to all-False before returning (only the probe's own
    entries are touched, so reuse across calls is O(|probe|), not
    O(vocab)).
    """
    if len(rows) == 0:
        return np.zeros(0, dtype=np.int64)
    scratch[probe_ids] = True
    flat, lengths = gather_rows(indptr, token_ids, rows)
    if len(flat) == 0:
        counts = np.zeros(len(rows), dtype=np.int64)
    else:
        segments = np.repeat(
            np.arange(len(rows), dtype=np.int64), lengths
        )
        # bincount accumulates strictly in input order — the same
        # left-to-right order a Python loop over the row would use.
        counts = np.bincount(
            segments[scratch[flat]], minlength=len(rows)
        ).astype(np.int64, copy=False)
    scratch[probe_ids] = False
    return counts


def overlap_block(
    inter: np.ndarray, probe_size: int, sizes: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`repro.similarity.measures.overlap_coefficient`.

    ``|a ∩ b| / min(|a|, |b|)`` with both-empty → 1.0 and one-empty →
    0.0, bit-identical to the scalar measure per element.
    """
    out = np.zeros(len(sizes), dtype=np.float64)
    if probe_size == 0:
        out[sizes == 0] = 1.0
        return out
    nonzero = sizes > 0
    denominator = np.minimum(probe_size, sizes)
    np.divide(inter, denominator, out=out, where=nonzero)
    return out


def jaccard_block(
    inter: np.ndarray, probe_size: int, sizes: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`repro.similarity.measures.jaccard`.

    ``|a ∩ b| / |a ∪ b|`` with both-empty → 1.0 and one-empty → 0.0.
    """
    out = np.zeros(len(sizes), dtype=np.float64)
    if probe_size == 0:
        out[sizes == 0] = 1.0
        return out
    nonzero = sizes > 0
    union = probe_size + sizes - inter
    np.divide(inter, union, out=out, where=nonzero)
    return out


def bitmask_encode(
    sets: Sequence[Iterable[Hashable]],
) -> tuple[np.ndarray, dict[Hashable, int]] | None:
    """Encode small-vocabulary sets as uint64 bitmasks.

    Returns ``(masks, bit_of_token)`` — one mask per input set — or
    None when the combined vocabulary exceeds 64 distinct tokens (the
    caller must fall back to a scalar set check).  ``a & b != 0`` on
    masks is then exactly ``bool(set_a & set_b)``.
    """
    bit_of_token: dict[Hashable, int] = {}
    mask_values: list[int] = []
    for token_set in sets:
        mask = 0
        for token in token_set:
            bit = bit_of_token.get(token)
            if bit is None:
                bit = len(bit_of_token)
                if bit >= 64:
                    return None
                bit_of_token[token] = bit
            mask |= 1 << bit
        mask_values.append(mask)
    return np.array(mask_values, dtype=np.uint64), bit_of_token


def bitmask_probe(
    token_set: Iterable[Hashable], bit_of_token: dict[Hashable, int]
) -> int:
    """Mask of a probe set under an existing bit assignment.

    Tokens without an assigned bit appear in *no* encoded set, so
    omitting them from the mask preserves the intersection test
    exactly.
    """
    mask = 0
    for token in token_set:
        bit = bit_of_token.get(token)
        if bit is not None:
            mask |= 1 << bit
    return mask
