"""Set-overlap similarity measures.

These operate on the signature sets produced by
:mod:`repro.similarity.tokenize` (word sets, n-gram sets, initial sets) and
are the building blocks for both the cheap necessary/sufficient predicates
and the final-predicate feature vector.
"""

from __future__ import annotations

from collections.abc import Collection, Set


def jaccard(a: Set, b: Set) -> float:
    """Return |a ∩ b| / |a ∪ b|; 1.0 when both sets are empty."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    inter = len(a & b)
    return inter / (len(a) + len(b) - inter)


def overlap_count(a: Set, b: Set) -> int:
    """Return |a ∩ b|."""
    return len(a & b)


def overlap_coefficient(a: Set, b: Set) -> float:
    """Return |a ∩ b| / min(|a|, |b|); 1.0 when both sets are empty.

    This is the "common items as a fraction of the smaller set" measure
    the paper's necessary predicates use ("common 3-Grams ... more than
    60% of the size of the smaller field").
    """
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    return len(a & b) / min(len(a), len(b))


def dice(a: Set, b: Set) -> float:
    """Return 2|a ∩ b| / (|a| + |b|); 1.0 when both sets are empty."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    return 2.0 * len(a & b) / (len(a) + len(b))


def cosine_set(a: Set, b: Set) -> float:
    """Return |a ∩ b| / sqrt(|a| * |b|); the unweighted cosine of sets."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    return len(a & b) / (len(a) * len(b)) ** 0.5


def containment(a: Set, b: Set) -> float:
    """Return |a ∩ b| / |a|: how much of *a* is covered by *b*."""
    if not a:
        return 1.0
    return len(a & b) / len(a)


def common_fraction_of_smaller(a: Collection, b: Collection) -> float:
    """Alias of :func:`overlap_coefficient` accepting any collections."""
    return overlap_coefficient(frozenset(a), frozenset(b))
