"""Record-pair feature extraction for the final-predicate classifier.

The paper's final criterion P is a trained binary classifier over
"standard similarity functions like Jaccard and Overlap count on the name
and co-authors fields with 3-grams and initials as signature", a
JaroWinkler feature, and the custom IDF similarities of Section 6.1.1.
A :class:`PairFeaturizer` bundles named features into a vector; the
per-dataset constructors assemble the paper's feature sets.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ..core.records import Record
from .custom import custom_author_similarity, custom_coauthor_similarity
from .measures import jaccard, overlap_coefficient
from .strings import jaro_winkler
from .tfidf import IdfTable
from .tokenize import (
    ADDRESS_STOP_WORDS,
    cached_ngram_set,
    cached_word_set,
    content_word_set,
    initial_set,
    normalize,
)

PairFeature = Callable[[Record, Record], float]


class PairFeaturizer:
    """A named bundle of pair features producing fixed-length vectors."""

    def __init__(self, features: Sequence[tuple[str, PairFeature]]):
        if not features:
            raise ValueError("need at least one feature")
        self._names = [name for name, _ in features]
        self._functions = [fn for _, fn in features]

    @property
    def names(self) -> list[str]:
        """Feature names, in vector order."""
        return list(self._names)

    @property
    def n_features(self) -> int:
        return len(self._functions)

    def vector(self, a: Record, b: Record) -> np.ndarray:
        """Return the feature vector of the pair (a, b)."""
        return np.array([fn(a, b) for fn in self._functions], dtype=float)

    def matrix(self, pairs: Sequence[tuple[Record, Record]]) -> np.ndarray:
        """Return the (len(pairs), n_features) matrix for many pairs."""
        return np.array([self.vector(a, b) for a, b in pairs], dtype=float)


def _ngram_jaccard(field: str) -> PairFeature:
    def feature(a: Record, b: Record) -> float:
        return jaccard(cached_ngram_set(a[field]), cached_ngram_set(b[field]))

    return feature


def _word_jaccard(field: str) -> PairFeature:
    def feature(a: Record, b: Record) -> float:
        return jaccard(cached_word_set(a[field]), cached_word_set(b[field]))

    return feature


def _ngram_overlap(field: str) -> PairFeature:
    def feature(a: Record, b: Record) -> float:
        return overlap_coefficient(
            cached_ngram_set(a[field]), cached_ngram_set(b[field])
        )

    return feature


def _initials_jaccard(field: str) -> PairFeature:
    def feature(a: Record, b: Record) -> float:
        return jaccard(initial_set(a[field]), initial_set(b[field]))

    return feature


def _jaro_winkler(field: str) -> PairFeature:
    def feature(a: Record, b: Record) -> float:
        return jaro_winkler(normalize(a[field]), normalize(b[field]))

    return feature


def _exact(field: str) -> PairFeature:
    def feature(a: Record, b: Record) -> float:
        return 1.0 if normalize(a[field]) == normalize(b[field]) else 0.0

    return feature


def _stopped_word_overlap(field: str, stop_words: frozenset[str]) -> PairFeature:
    def feature(a: Record, b: Record) -> float:
        return overlap_coefficient(
            content_word_set(a[field], stop_words),
            content_word_set(b[field], stop_words),
        )

    return feature


def citation_featurizer(idf: IdfTable) -> PairFeaturizer:
    """The Section 6.1.1 citation feature set (author + co-author fields)."""

    def custom_author(a: Record, b: Record) -> float:
        return custom_author_similarity(a["author"], b["author"], idf)

    def custom_coauthor(a: Record, b: Record) -> float:
        return custom_coauthor_similarity(a["coauthors"], b["coauthors"], idf)

    return PairFeaturizer(
        [
            ("author_3gram_jaccard", _ngram_jaccard("author")),
            ("author_word_jaccard", _word_jaccard("author")),
            ("author_3gram_overlap", _ngram_overlap("author")),
            ("author_initials_jaccard", _initials_jaccard("author")),
            ("author_jaro_winkler", _jaro_winkler("author")),
            ("coauthor_word_jaccard", _word_jaccard("coauthors")),
            ("coauthor_3gram_jaccard", _ngram_jaccard("coauthors")),
            ("custom_author", custom_author),
            ("custom_coauthor", custom_coauthor),
        ]
    )


def name_only_featurizer() -> PairFeaturizer:
    """Feature set for single-field name datasets (the Authors sample)."""
    return PairFeaturizer(
        [
            ("name_3gram_jaccard", _ngram_jaccard("name")),
            ("name_word_jaccard", _word_jaccard("name")),
            ("name_3gram_overlap", _ngram_overlap("name")),
            ("name_initials_jaccard", _initials_jaccard("name")),
            ("name_jaro_winkler", _jaro_winkler("name")),
        ]
    )


def address_featurizer(idf: IdfTable | None = None) -> PairFeaturizer:
    """The Section 6.1.3 address feature set (name, address, pin fields)."""
    features: list[tuple[str, PairFeature]] = [
        ("name_3gram_jaccard", _ngram_jaccard("name")),
        ("name_initials_jaccard", _initials_jaccard("name")),
        ("name_jaro_winkler", _jaro_winkler("name")),
        ("address_3gram_jaccard", _ngram_jaccard("address")),
        (
            "address_word_overlap",
            _stopped_word_overlap("address", ADDRESS_STOP_WORDS),
        ),
        ("pin_exact", _exact("pin")),
    ]
    if idf is not None:
        def custom_name(a: Record, b: Record) -> float:
            return custom_author_similarity(a["name"], b["name"], idf)

        features.append(("custom_name", custom_name))
    return PairFeaturizer(features)


def _word_overlap(field: str) -> PairFeature:
    def feature(a: Record, b: Record) -> float:
        return overlap_coefficient(cached_word_set(a[field]), cached_word_set(b[field]))

    return feature


#: Decorative tokens the second guide adds or strips ("the spice garden
#: restaurant" vs "spice garden").
_RESTAURANT_DECOR = frozenset({"the", "restaurant", "cafe", "diner", "grill"})


def restaurant_featurizer() -> PairFeaturizer:
    """Feature set for the restaurant benchmark (name + address fields).

    Includes decoration-stripped word overlap: guide listings differ by
    "the …" prefixes and "… restaurant/cafe/diner" suffixes, which
    Jaccard alone punishes.
    """

    def stripped_overlap(a: Record, b: Record) -> float:
        return overlap_coefficient(
            content_word_set(a["name"], _RESTAURANT_DECOR),
            content_word_set(b["name"], _RESTAURANT_DECOR),
        )

    return PairFeaturizer(
        [
            ("name_3gram_jaccard", _ngram_jaccard("name")),
            ("name_word_jaccard", _word_jaccard("name")),
            ("name_word_overlap", _word_overlap("name")),
            ("name_stripped_overlap", stripped_overlap),
            ("name_jaro_winkler", _jaro_winkler("name")),
            ("address_3gram_jaccard", _ngram_jaccard("address")),
            ("address_word_jaccard", _word_jaccard("address")),
            ("city_exact", _exact("city")),
        ]
    )
