"""Character-level string similarity measures implemented from scratch.

The paper's final-predicate feature set uses JaroWinkler — "an efficient
approximation of edit distance specifically tailored for names" (Section
6.1.1) — alongside set-based measures.  We implement Levenshtein, Jaro and
Jaro-Winkler here with no external dependencies.
"""

from __future__ import annotations


def levenshtein(a: str, b: str) -> int:
    """Return the Levenshtein (unit-cost edit) distance between *a* and *b*.

    Uses the classic two-row dynamic program: O(len(a) * len(b)) time,
    O(min(len(a), len(b))) memory.
    """
    if a == b:
        return 0
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Return edit distance normalized into a [0, 1] similarity."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein(a, b) / longest


def jaro(a: str, b: str) -> float:
    """Return the Jaro similarity of *a* and *b* in [0, 1].

    Matches are characters equal within a window of
    ``max(len(a), len(b)) // 2 - 1`` positions; transpositions are matched
    characters appearing in different relative orders.
    """
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        return 0.0

    window = max(len_a, len_b) // 2 - 1
    if window < 0:
        window = 0

    a_matched = [False] * len_a
    b_matched = [False] * len_b
    matches = 0
    for i, ch in enumerate(a):
        lo = max(0, i - window)
        hi = min(len_b, i + window + 1)
        for j in range(lo, hi):
            if not b_matched[j] and b[j] == ch:
                a_matched[i] = True
                b_matched[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0

    # Count transpositions between the matched subsequences.
    b_match_chars = [b[j] for j in range(len_b) if b_matched[j]]
    transpositions = 0
    k = 0
    for i in range(len_a):
        if a_matched[i]:
            if a[i] != b_match_chars[k]:
                transpositions += 1
            k += 1
    transpositions //= 2

    m = float(matches)
    return (m / len_a + m / len_b + (m - transpositions) / m) / 3.0


_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    "l": "4",
    **dict.fromkeys("mn", "5"),
    "r": "6",
}


def soundex(word: str) -> str:
    """American Soundex code of *word* (e.g. ``"sarawagi" -> "S620"``).

    The classic phonetic blocking key of the record-linkage literature
    (Fellegi–Sunter lineage [18]): the first letter plus three digits
    encoding consonant classes, with adjacent duplicates collapsed and
    h/w transparent between same-coded consonants.  Returns '' for input
    with no ASCII letters.
    """
    letters = [ch for ch in word.lower() if "a" <= ch <= "z"]
    if not letters:
        return ""
    first = letters[0]
    code = [first.upper()]
    previous = _SOUNDEX_CODES.get(first, "")
    for ch in letters[1:]:
        if ch in "hw":
            continue  # transparent: does not reset the previous code
        digit = _SOUNDEX_CODES.get(ch, "")
        if digit and digit != previous:
            code.append(digit)
            if len(code) == 4:
                break
        previous = digit
    return "".join(code).ljust(4, "0")


def soundex_equal(a: str, b: str) -> bool:
    """True when the two words share a (non-empty) Soundex code."""
    code_a = soundex(a)
    return bool(code_a) and code_a == soundex(b)


def monge_elkan(
    tokens_a: list[str],
    tokens_b: list[str],
    base=None,
) -> float:
    """Monge–Elkan token-level similarity (the field-matching measure of
    Monge & Elkan [28], one of the paper's cited blocking designs).

    Each token of *tokens_a* is matched to its best counterpart in
    *tokens_b* under the *base* character similarity (Jaro-Winkler by
    default) and the maxima are averaged.  Asymmetric by definition;
    symmetrize with ``max`` or the mean of both directions if needed.
    """
    if base is None:
        base = jaro_winkler
    if not tokens_a:
        return 1.0 if not tokens_b else 0.0
    if not tokens_b:
        return 0.0
    total = 0.0
    for token_a in tokens_a:
        total += max(base(token_a, token_b) for token_b in tokens_b)
    return total / len(tokens_a)


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1, max_prefix: int = 4) -> float:
    """Return the Jaro-Winkler similarity of *a* and *b* in [0, 1].

    Boosts the Jaro score by ``prefix_scale`` per character of common
    prefix (up to *max_prefix* characters), rewarding names that agree at
    the start — the dominant pattern for person-name variants.
    """
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError(f"prefix_scale must be in [0, 0.25], got {prefix_scale}")
    base = jaro(a, b)
    prefix = 0
    for ch_a, ch_b in zip(a, b):
        if ch_a != ch_b or prefix >= max_prefix:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)
