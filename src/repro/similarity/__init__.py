"""Similarity substrate: tokenization, string/set measures, TF-IDF, features."""

from .custom import custom_author_similarity, custom_coauthor_similarity
from .measures import (
    containment,
    cosine_set,
    dice,
    jaccard,
    overlap_coefficient,
    overlap_count,
)
from .strings import (
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    monge_elkan,
    soundex,
    soundex_equal,
)
from .encoding import EncodedSetCorpus, TokenDictionary
from .setjoin import (
    brute_force_jaccard_join,
    canonical_token_order,
    encoded_jaccard_self_join,
    jaccard_self_join,
)
from .tfidf import IdfTable, TfIdfIndex, tfidf_cosine
from .tokenize import (
    ADDRESS_STOP_WORDS,
    content_word_set,
    content_words,
    initial_set,
    initials,
    ngram_set,
    ngrams,
    normalize,
    sorted_initials_key,
    word_set,
    words,
)
from .vectorize import (
    PairFeaturizer,
    address_featurizer,
    citation_featurizer,
    name_only_featurizer,
    restaurant_featurizer,
)

__all__ = [
    "ADDRESS_STOP_WORDS",
    "EncodedSetCorpus",
    "IdfTable",
    "PairFeaturizer",
    "TfIdfIndex",
    "TokenDictionary",
    "address_featurizer",
    "brute_force_jaccard_join",
    "canonical_token_order",
    "encoded_jaccard_self_join",
    "citation_featurizer",
    "containment",
    "content_word_set",
    "content_words",
    "cosine_set",
    "custom_author_similarity",
    "custom_coauthor_similarity",
    "dice",
    "initial_set",
    "initials",
    "jaccard",
    "jaccard_self_join",
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "levenshtein_similarity",
    "monge_elkan",
    "name_only_featurizer",
    "ngram_set",
    "ngrams",
    "normalize",
    "soundex",
    "soundex_equal",
    "overlap_coefficient",
    "overlap_count",
    "restaurant_featurizer",
    "sorted_initials_key",
    "tfidf_cosine",
    "word_set",
    "words",
]
