"""Corpus-level IDF statistics and TF-IDF cosine similarity.

Two of the paper's predicates are IDF-aware ("the minimum IDF over two
author words is at least 13", Section 6.1.1), and TF-IDF cosine is both a
classic canopy predicate [26] and a classifier feature.  The
:class:`IdfTable` is built once per corpus from an iterable of token lists;
:class:`TfIdfIndex` adds an inverted index so canopy-style candidate
retrieval never scans the whole corpus.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from collections.abc import Iterable, Sequence


class IdfTable:
    """Inverse-document-frequency statistics over a token corpus.

    IDF of token ``t`` is ``log(N / df(t))`` with natural log, where ``N``
    is the number of documents and ``df`` the number of documents
    containing ``t``.  Unseen tokens get the maximum possible IDF,
    ``log(N)`` (they are rarer than anything observed).
    """

    def __init__(self, documents: Iterable[Iterable[str]]):
        df: Counter[str] = Counter()
        n_docs = 0
        for doc in documents:
            n_docs += 1
            df.update(set(doc))
        self._df = dict(df)
        self._n_docs = n_docs
        self._max_idf = math.log(n_docs) if n_docs > 0 else 0.0

    @classmethod
    def from_stats(cls, df: dict[str, int], n_docs: int) -> "IdfTable":
        """Rebuild a table from persisted ``df`` statistics.

        Produces a table indistinguishable from one built by scanning
        the original corpus — the statistics *are* the whole state.
        Used when a serialized TF-IDF index restores without the corpus.
        """
        table = cls(())
        table._df = dict(df)
        table._n_docs = int(n_docs)
        table._max_idf = math.log(n_docs) if n_docs > 0 else 0.0
        return table

    @property
    def n_documents(self) -> int:
        """Number of documents the table was built from."""
        return self._n_docs

    def document_frequency(self, token: str) -> int:
        """Return how many documents contain *token* (0 if unseen)."""
        return self._df.get(token, 0)

    def idf(self, token: str) -> float:
        """Return the IDF of *token*; unseen tokens get ``log(N)``."""
        df = self._df.get(token)
        if df is None or df == 0:
            return self._max_idf
        return math.log(self._n_docs / df)

    def min_idf(self, tokens: Iterable[str]) -> float:
        """Return the smallest IDF among *tokens*; +inf for no tokens."""
        return min((self.idf(t) for t in tokens), default=math.inf)

    def max_idf(self, tokens: Iterable[str]) -> float:
        """Return the largest IDF among *tokens*; 0.0 for no tokens."""
        return max((self.idf(t) for t in tokens), default=0.0)

    def max_idf_bound(self) -> float:
        """Largest IDF the table can report: log(N), the unseen-token IDF."""
        return self._max_idf

    def weight_vector(self, tokens: Sequence[str]) -> dict[str, float]:
        """Return the L2-normalized TF-IDF vector of a token sequence."""
        tf = Counter(tokens)
        vec = {t: count * self.idf(t) for t, count in tf.items()}
        norm = math.sqrt(sum(w * w for w in vec.values()))
        if norm > 0:
            vec = {t: w / norm for t, w in vec.items()}
        return vec


def tfidf_cosine(vec_a: dict[str, float], vec_b: dict[str, float]) -> float:
    """Return the cosine of two (already normalized) sparse vectors."""
    if len(vec_a) > len(vec_b):
        vec_a, vec_b = vec_b, vec_a
    return sum(w * vec_b.get(t, 0.0) for t, w in vec_a.items())


class TfIdfIndex:
    """Inverted TF-IDF index supporting threshold-based candidate retrieval.

    This is the classic canopy machinery of McCallum et al. [26]: an
    inverted index over normalized TF-IDF vectors lets us find, for a probe
    document, every indexed document with cosine above a threshold without
    touching unrelated documents.
    """

    def __init__(self, idf: IdfTable):
        self._idf = idf
        self._vectors: dict[int, dict[str, float]] = {}
        self._postings: dict[str, list[int]] = defaultdict(list)

    def add(self, doc_id: int, tokens: Sequence[str]) -> None:
        """Index *tokens* under *doc_id*.  Re-adding an id is an error."""
        if doc_id in self._vectors:
            raise ValueError(f"document id {doc_id} already indexed")
        vec = self._idf.weight_vector(tokens)
        self._vectors[doc_id] = vec
        # Tokens appearing in every document have IDF 0 and so weight 0:
        # they can never contribute to a dot product, but their posting
        # lists are the longest in the index (every document posts them).
        # Skipping them shrinks the index and removes the degenerate
        # candidates they would surface (cosine contribution exactly 0).
        for token, weight in vec.items():
            if weight > 0.0:
                self._postings[token].append(doc_id)

    def __len__(self) -> int:
        return len(self._vectors)

    @property
    def n_posting_entries(self) -> int:
        """Total ``(token, document)`` entries across all posting lists."""
        return sum(len(ids) for ids in self._postings.values())

    def vector(self, doc_id: int) -> dict[str, float]:
        """Return the stored normalized vector for *doc_id*."""
        return self._vectors[doc_id]

    def cosine(self, doc_id_a: int, doc_id_b: int) -> float:
        """Return the cosine between two indexed documents."""
        return tfidf_cosine(self._vectors[doc_id_a], self._vectors[doc_id_b])

    def candidates_above(
        self, tokens: Sequence[str], threshold: float
    ) -> list[tuple[int, float]]:
        """Return ``(doc_id, cosine)`` pairs with cosine >= *threshold*.

        Accumulates partial dot products over the postings of the probe's
        tokens, so only documents sharing at least one token are scored.
        """
        probe = self._idf.weight_vector(tokens)
        scores: dict[int, float] = defaultdict(float)
        for token, weight in probe.items():
            for doc_id in self._postings.get(token, ()):
                scores[doc_id] += weight * self._vectors[doc_id].get(token, 0.0)
        # Tie-break equal cosines by doc_id: dict accumulation order
        # reflects posting-list traversal, which must not leak into the
        # result (canopy candidate lists have to be deterministic across
        # runs and worker counts).
        return sorted(
            ((doc_id, s) for doc_id, s in scores.items() if s >= threshold),
            key=lambda pair: (-pair[1], pair[0]),
        )


def save_tfidf_index(index: TfIdfIndex, path) -> None:
    """Serialize a :class:`TfIdfIndex` into one mappable array container.

    The file holds the IDF statistics (token pool + document
    frequencies), every stored vector as one CSR matrix, and the
    inverted index as posting lists of ``(doc_id, stored weight)`` —
    the weight is the doc's own normalized component for that token, so
    a probe scores candidates from the postings alone, never touching
    the vectors.  :func:`load_tfidf_index` serves queries straight from
    the mapped arrays with answers bit-identical to the live index.
    """
    import numpy as np

    from ..storage.layout import write_arrays
    from ..storage.strings import StringPool

    # One token pool covers both the df table and the vectors (a vector
    # can hold corpus-unseen tokens when the IdfTable came from a
    # different corpus; they get df 0, which round-trips to max-idf).
    slots: dict[str, int] = {}
    df_table = index._idf._df
    for token in df_table:
        slots.setdefault(token, len(slots))
    for vec in index._vectors.values():
        for token in vec:
            slots.setdefault(token, len(slots))
    tokens = list(slots)
    df_counts = np.asarray(
        [df_table.get(token, 0) for token in tokens], dtype=np.int64
    )

    doc_ids = np.asarray(list(index._vectors), dtype=np.int64)
    vec_indptr = [0]
    vec_tokens: list[int] = []
    vec_weights: list[float] = []
    for vec in index._vectors.values():
        for token, weight in vec.items():
            vec_tokens.append(slots[token])
            vec_weights.append(weight)
        vec_indptr.append(len(vec_tokens))

    post_indptr = [0]
    post_docs: list[int] = []
    post_weights: list[float] = []
    for token in tokens:
        for doc_id in index._postings.get(token, ()):
            post_docs.append(doc_id)
            post_weights.append(index._vectors[doc_id][token])
        post_indptr.append(len(post_docs))

    pool = StringPool.build(tokens)
    arrays = dict(pool.to_arrays("tokens."))
    arrays.update(
        {
            "df": df_counts,
            "doc_ids": doc_ids,
            "vec.indptr": np.asarray(vec_indptr, dtype=np.int64),
            "vec.tokens": np.asarray(vec_tokens, dtype=np.int32),
            "vec.weights": np.asarray(vec_weights, dtype=np.float64),
            "post.indptr": np.asarray(post_indptr, dtype=np.int64),
            "post.docs": np.asarray(post_docs, dtype=np.int64),
            "post.weights": np.asarray(post_weights, dtype=np.float64),
        }
    )
    meta = {"kind": "tfidf-index", "n_docs": index._idf.n_documents}
    write_arrays(path, arrays, meta)


def load_tfidf_index(path) -> "MappedTfIdfIndex":
    """Map a serialized index; postings and vectors stay on disk."""
    return MappedTfIdfIndex(path)


class MappedTfIdfIndex:
    """A read-only :class:`TfIdfIndex` served from memory-mapped arrays.

    Mirrors the query surface (``candidates_above``, ``vector``,
    ``cosine``, sizes) with bit-identical answers: stored weights are
    the same float64 values the live index holds, posting lists keep
    their insertion order, and scoring accumulates per probe token in
    probe-vector order — exactly the arithmetic of
    :meth:`TfIdfIndex.candidates_above`, term for term.  Only the
    token→slot and doc-id→row dictionaries are resident; the weight
    payload pages in on demand.
    """

    def __init__(self, path):
        from ..storage.layout import ArrayFileError, MappedArrays
        from ..storage.strings import StringPool

        mapped = MappedArrays(path)
        if mapped.meta.get("kind") != "tfidf-index":
            raise ArrayFileError(
                f"{path} is not a serialized TF-IDF index "
                f"(kind={mapped.meta.get('kind')!r})"
            )
        arrays = mapped.arrays
        tokens = list(StringPool.from_arrays(arrays, "tokens."))
        self._idf = IdfTable.from_stats(
            dict(zip(tokens, arrays["df"].tolist())),
            int(mapped.meta["n_docs"]),
        )
        self._slots = {token: slot for slot, token in enumerate(tokens)}
        self._tokens = tokens
        self._doc_ids = arrays["doc_ids"]
        self._rows = {
            int(doc_id): row
            for row, doc_id in enumerate(self._doc_ids.tolist())
        }
        self._vec_indptr = arrays["vec.indptr"]
        self._vec_tokens = arrays["vec.tokens"]
        self._vec_weights = arrays["vec.weights"]
        self._post_indptr = arrays["post.indptr"]
        self._post_docs = arrays["post.docs"]
        self._post_weights = arrays["post.weights"]

    @property
    def idf(self) -> IdfTable:
        """The restored IDF table (identical statistics to the original)."""
        return self._idf

    def __len__(self) -> int:
        return len(self._doc_ids)

    @property
    def n_posting_entries(self) -> int:
        return len(self._post_docs)

    def vector(self, doc_id: int) -> dict[str, float]:
        """Materialize the stored normalized vector for *doc_id*."""
        row = self._rows[doc_id]
        start, end = int(self._vec_indptr[row]), int(self._vec_indptr[row + 1])
        return {
            self._tokens[slot]: weight
            for slot, weight in zip(
                self._vec_tokens[start:end].tolist(),
                self._vec_weights[start:end].tolist(),
            )
        }

    def cosine(self, doc_id_a: int, doc_id_b: int) -> float:
        return tfidf_cosine(self.vector(doc_id_a), self.vector(doc_id_b))

    def candidates_above(
        self, tokens: Sequence[str], threshold: float
    ) -> list[tuple[int, float]]:
        """Identical contract (and floats) as the live index's method."""
        probe = self._idf.weight_vector(tokens)
        scores: dict[int, float] = defaultdict(float)
        for token, weight in probe.items():
            slot = self._slots.get(token)
            if slot is None:
                continue
            start = int(self._post_indptr[slot])
            end = int(self._post_indptr[slot + 1])
            for doc_id, stored in zip(
                self._post_docs[start:end].tolist(),
                self._post_weights[start:end].tolist(),
            ):
                scores[doc_id] += weight * stored
        return sorted(
            ((doc_id, s) for doc_id, s in scores.items() if s >= threshold),
            key=lambda pair: (-pair[1], pair[0]),
        )
