"""Corpus-level IDF statistics and TF-IDF cosine similarity.

Two of the paper's predicates are IDF-aware ("the minimum IDF over two
author words is at least 13", Section 6.1.1), and TF-IDF cosine is both a
classic canopy predicate [26] and a classifier feature.  The
:class:`IdfTable` is built once per corpus from an iterable of token lists;
:class:`TfIdfIndex` adds an inverted index so canopy-style candidate
retrieval never scans the whole corpus.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from collections.abc import Iterable, Sequence


class IdfTable:
    """Inverse-document-frequency statistics over a token corpus.

    IDF of token ``t`` is ``log(N / df(t))`` with natural log, where ``N``
    is the number of documents and ``df`` the number of documents
    containing ``t``.  Unseen tokens get the maximum possible IDF,
    ``log(N)`` (they are rarer than anything observed).
    """

    def __init__(self, documents: Iterable[Iterable[str]]):
        df: Counter[str] = Counter()
        n_docs = 0
        for doc in documents:
            n_docs += 1
            df.update(set(doc))
        self._df = dict(df)
        self._n_docs = n_docs
        self._max_idf = math.log(n_docs) if n_docs > 0 else 0.0

    @property
    def n_documents(self) -> int:
        """Number of documents the table was built from."""
        return self._n_docs

    def document_frequency(self, token: str) -> int:
        """Return how many documents contain *token* (0 if unseen)."""
        return self._df.get(token, 0)

    def idf(self, token: str) -> float:
        """Return the IDF of *token*; unseen tokens get ``log(N)``."""
        df = self._df.get(token)
        if df is None or df == 0:
            return self._max_idf
        return math.log(self._n_docs / df)

    def min_idf(self, tokens: Iterable[str]) -> float:
        """Return the smallest IDF among *tokens*; +inf for no tokens."""
        return min((self.idf(t) for t in tokens), default=math.inf)

    def max_idf(self, tokens: Iterable[str]) -> float:
        """Return the largest IDF among *tokens*; 0.0 for no tokens."""
        return max((self.idf(t) for t in tokens), default=0.0)

    def max_idf_bound(self) -> float:
        """Largest IDF the table can report: log(N), the unseen-token IDF."""
        return self._max_idf

    def weight_vector(self, tokens: Sequence[str]) -> dict[str, float]:
        """Return the L2-normalized TF-IDF vector of a token sequence."""
        tf = Counter(tokens)
        vec = {t: count * self.idf(t) for t, count in tf.items()}
        norm = math.sqrt(sum(w * w for w in vec.values()))
        if norm > 0:
            vec = {t: w / norm for t, w in vec.items()}
        return vec


def tfidf_cosine(vec_a: dict[str, float], vec_b: dict[str, float]) -> float:
    """Return the cosine of two (already normalized) sparse vectors."""
    if len(vec_a) > len(vec_b):
        vec_a, vec_b = vec_b, vec_a
    return sum(w * vec_b.get(t, 0.0) for t, w in vec_a.items())


class TfIdfIndex:
    """Inverted TF-IDF index supporting threshold-based candidate retrieval.

    This is the classic canopy machinery of McCallum et al. [26]: an
    inverted index over normalized TF-IDF vectors lets us find, for a probe
    document, every indexed document with cosine above a threshold without
    touching unrelated documents.
    """

    def __init__(self, idf: IdfTable):
        self._idf = idf
        self._vectors: dict[int, dict[str, float]] = {}
        self._postings: dict[str, list[int]] = defaultdict(list)

    def add(self, doc_id: int, tokens: Sequence[str]) -> None:
        """Index *tokens* under *doc_id*.  Re-adding an id is an error."""
        if doc_id in self._vectors:
            raise ValueError(f"document id {doc_id} already indexed")
        vec = self._idf.weight_vector(tokens)
        self._vectors[doc_id] = vec
        # Tokens appearing in every document have IDF 0 and so weight 0:
        # they can never contribute to a dot product, but their posting
        # lists are the longest in the index (every document posts them).
        # Skipping them shrinks the index and removes the degenerate
        # candidates they would surface (cosine contribution exactly 0).
        for token, weight in vec.items():
            if weight > 0.0:
                self._postings[token].append(doc_id)

    def __len__(self) -> int:
        return len(self._vectors)

    @property
    def n_posting_entries(self) -> int:
        """Total ``(token, document)`` entries across all posting lists."""
        return sum(len(ids) for ids in self._postings.values())

    def vector(self, doc_id: int) -> dict[str, float]:
        """Return the stored normalized vector for *doc_id*."""
        return self._vectors[doc_id]

    def cosine(self, doc_id_a: int, doc_id_b: int) -> float:
        """Return the cosine between two indexed documents."""
        return tfidf_cosine(self._vectors[doc_id_a], self._vectors[doc_id_b])

    def candidates_above(
        self, tokens: Sequence[str], threshold: float
    ) -> list[tuple[int, float]]:
        """Return ``(doc_id, cosine)`` pairs with cosine >= *threshold*.

        Accumulates partial dot products over the postings of the probe's
        tokens, so only documents sharing at least one token are scored.
        """
        probe = self._idf.weight_vector(tokens)
        scores: dict[int, float] = defaultdict(float)
        for token, weight in probe.items():
            for doc_id in self._postings.get(token, ()):
                scores[doc_id] += weight * self._vectors[doc_id].get(token, 0.0)
        # Tie-break equal cosines by doc_id: dict accumulation order
        # reflects posting-list traversal, which must not leak into the
        # result (canopy candidate lists have to be deterministic across
        # runs and worker counts).
        return sorted(
            ((doc_id, s) for doc_id, s in scores.items() if s >= threshold),
            key=lambda pair: (-pair[1], pair[0]),
        )
