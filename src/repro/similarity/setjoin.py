"""Self-join on set-similarity predicates (prefix/length/positional filters).

The paper's related work leans on efficient set-similarity joins — the
authors' own earlier systems ([32], [33]) and the exact-join literature
([3], [19]).  This module implements the standard all-pairs machinery
for a Jaccard threshold self-join (the PPJoin family, simplified):

* **length filter** — |A| >= t·|B| for Jaccard(A,B) >= t (assuming
  |A| <= |B|);
* **prefix filter** — order tokens by global frequency (rarest first);
  if Jaccard >= t the two records must share a token within their first
  ``|X| - ceil(t·|X|) + 1`` tokens;
* **positional filter** — when probing a candidate via token at prefix
  positions (p_a, p_b), the overlap still achievable is bounded by
  ``1 + min(|A| - p_a, |B| - p_b)``; candidates that cannot reach the
  required overlap are dropped before verification.

The join powers :func:`jaccard_self_join` (all pairs above a Jaccard
threshold) and integrates with the predicate layer via
:class:`~repro.predicates.library.JaccardPredicate`-style thresholds.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from collections.abc import Sequence

import numpy as np

from .encoding import intersection_counts

_CEIL_EPS = 1e-9


def _eps_ceil(value: float) -> int:
    """``math.ceil`` that forgives float drift just above an integer.

    ``0.28 * 25`` evaluates to ``7.000000000000001``; a raw ceil turns
    that into 8, overshooting the exact bound by one.  In a filter
    derivation that overshoot is *unsound*: it lengthens the required
    overlap and shortens the prefix, silently dropping pairs that sit
    exactly on the threshold.  Values within a relative epsilon of an
    integer are treated as that integer.
    """
    floor = math.floor(value)
    if value - floor <= _CEIL_EPS * max(1.0, abs(value)):
        return floor
    return math.ceil(value)


def _required_overlap(size_a: int, size_b: int, threshold: float) -> int:
    """Minimum |A ∩ B| for Jaccard(A, B) >= threshold."""
    return _eps_ceil(threshold / (1.0 + threshold) * (size_a + size_b))


def canonical_token_order(sets: Sequence[frozenset[str]]) -> dict[str, int]:
    """Global token order for prefix filtering: rarest first, ties by
    token — the order that makes prefixes maximally selective."""
    frequency: Counter[str] = Counter()
    for token_set in sets:
        frequency.update(token_set)
    ordered = sorted(frequency, key=lambda t: (frequency[t], t))
    return {token: rank for rank, token in enumerate(ordered)}


def jaccard_self_join(
    sets: Sequence[frozenset[str]],
    threshold: float,
) -> list[tuple[int, int, float]]:
    """All pairs (i, j, jaccard) with Jaccard >= *threshold*, i < j.

    O(candidates) with the three filters; exact (verified) output.
    Empty sets join nothing (their Jaccard with anything non-empty is 0
    and the 1.0-for-two-empties convention is not a join result).
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    order = canonical_token_order(sets)
    sorted_sets = [
        sorted(token_set, key=order.__getitem__) for token_set in sets
    ]
    # Process records in non-decreasing size order so the length filter
    # is a simple cutoff against already-indexed (smaller) records.
    by_size = sorted(range(len(sets)), key=lambda i: len(sets[i]))

    # token -> list of (record index, prefix position, size)
    index: dict[str, list[tuple[int, int, int]]] = defaultdict(list)
    results: list[tuple[int, int, float]] = []

    for record in by_size:
        tokens = sorted_sets[record]
        size = len(tokens)
        if size == 0:
            continue
        # The eps-robust ceil keeps pairs sitting exactly on the
        # threshold: float drift in threshold*size must never shorten
        # the prefix or tighten the length cutoff past the exact value.
        minimum_other_size = _eps_ceil(threshold * size)
        prefix_length = size - minimum_other_size + 1
        candidate_overlap_bound: dict[int, int] = {}
        for position in range(prefix_length):
            token = tokens[position]
            for other, other_position, other_size in index[token]:
                if other_size < minimum_other_size:
                    continue  # length filter
                bound = 1 + min(size - position - 1, other_size - other_position - 1)
                best = candidate_overlap_bound.get(other)
                if best is None or bound > best:
                    candidate_overlap_bound[other] = bound
        set_a = sets[record]
        for other, bound in candidate_overlap_bound.items():
            required = _required_overlap(size, len(sets[other]), threshold)
            if bound < required:
                continue  # positional filter
            inter = len(set_a & sets[other])
            union = size + len(sets[other]) - inter
            jaccard = inter / union if union else 0.0
            if jaccard >= threshold:
                pair = (other, record) if other < record else (record, other)
                results.append((*pair, jaccard))
        for position in range(prefix_length):
            index[tokens[position]].append((record, position, size))

    results.sort()
    return results


def _eps_ceil_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_eps_ceil` (identical per-element results)."""
    floor = np.floor(values)
    forgive = values - floor <= _CEIL_EPS * np.maximum(1.0, np.abs(values))
    return np.where(forgive, floor, np.ceil(values)).astype(np.int64)


def encoded_jaccard_self_join(
    sets: Sequence[frozenset[str]],
    threshold: float,
) -> list[tuple[int, int, float]]:
    """:func:`jaccard_self_join` with block-vectorized verification.

    Candidate generation uses the identical prefix/length/positional
    filters; each record's surviving candidates are then verified in one
    NumPy pass over an integer-encoded corpus (tokens mapped to their
    canonical-order rank).  Output is equal to the scalar join's,
    including the jaccard floats (``int64/int64`` true division is the
    same correctly-rounded float64 as Python ``/``).
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    order = canonical_token_order(sets)
    # CSR encoding with id == canonical rank; rows ascending-by-rank are
    # exactly the rarest-first sorted token lists.
    indptr = np.zeros(len(sets) + 1, dtype=np.int64)
    rows = []
    for position, token_set in enumerate(sets):
        row = np.sort(
            np.fromiter(
                (order[token] for token in token_set),
                dtype=np.int32,
                count=len(token_set),
            )
        )
        rows.append(row)
        indptr[position + 1] = indptr[position] + len(row)
    token_ids = (
        np.concatenate(rows) if rows else np.empty(0, dtype=np.int32)
    ).astype(np.int32, copy=False)
    sizes = np.diff(indptr)
    scratch = np.zeros(len(order), dtype=bool)
    factor = threshold / (1.0 + threshold)

    by_size = sorted(range(len(sets)), key=lambda i: len(sets[i]))
    index: dict[int, list[tuple[int, int, int]]] = defaultdict(list)
    results: list[tuple[int, int, float]] = []

    for record in by_size:
        tokens = rows[record]
        size = len(tokens)
        if size == 0:
            continue
        minimum_other_size = _eps_ceil(threshold * size)
        prefix_length = size - minimum_other_size + 1
        candidate_overlap_bound: dict[int, int] = {}
        for position in range(prefix_length):
            token = int(tokens[position])
            for other, other_position, other_size in index[token]:
                if other_size < minimum_other_size:
                    continue  # length filter
                bound = 1 + min(
                    size - position - 1, other_size - other_position - 1
                )
                best = candidate_overlap_bound.get(other)
                if best is None or bound > best:
                    candidate_overlap_bound[other] = bound
        if candidate_overlap_bound:
            others = np.fromiter(
                candidate_overlap_bound.keys(),
                dtype=np.int64,
                count=len(candidate_overlap_bound),
            )
            bounds = np.fromiter(
                candidate_overlap_bound.values(),
                dtype=np.int64,
                count=len(candidate_overlap_bound),
            )
            required = _eps_ceil_array(factor * (size + sizes[others]))
            others = others[bounds >= required]  # positional filter
            if len(others):
                inter = intersection_counts(
                    tokens, indptr, token_ids, others, scratch
                )
                union = size + sizes[others] - inter
                jaccard = inter / union
                accept = jaccard >= threshold
                for other, value in zip(
                    others[accept].tolist(), jaccard[accept].tolist()
                ):
                    pair = (
                        (other, record) if other < record else (record, other)
                    )
                    results.append((*pair, value))
        for position in range(prefix_length):
            index[int(tokens[position])].append((record, position, size))

    results.sort()
    return results


def brute_force_jaccard_join(
    sets: Sequence[frozenset[str]], threshold: float
) -> list[tuple[int, int, float]]:
    """Reference O(n^2) join for testing the filtered version."""
    results = []
    for i in range(len(sets)):
        if not sets[i]:
            continue
        for j in range(i + 1, len(sets)):
            if not sets[j]:
                continue
            inter = len(sets[i] & sets[j])
            union = len(sets[i]) + len(sets[j]) - inter
            jaccard = inter / union
            if jaccard >= threshold:
                results.append((i, j, jaccard))
    return results
