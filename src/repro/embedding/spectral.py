"""Spectral linear embedding (the alternative in [24], Section 5.3.1).

Arranges records by the coordinates of the Fiedler vector (the
eigenvector of the graph Laplacian with the second-smallest eigenvalue)
of the positive-similarity graph.  Connected components are embedded
independently and concatenated with breaks between them.
"""

from __future__ import annotations

import numpy as np

from ..clustering.correlation import ScoreMatrix
from ..graphs.union_find import UnionFind
from .greedy import LinearEmbedding


def spectral_embedding(scores: ScoreMatrix) -> LinearEmbedding:
    """Return a Fiedler-vector ordering of positions 0..n-1.

    Each connected component of the positive-score graph is sorted by its
    own Fiedler coordinate; components are emitted largest-first with a
    break at each component boundary.  Components of size <= 2 keep index
    order (their Fiedler vector is degenerate).
    """
    n = scores.n
    if n == 0:
        return LinearEmbedding(order=[])

    uf = UnionFind(n)
    for i, j, score in scores.scored_pairs():
        if score > 0:
            uf.union(i, j)

    order: list[int] = []
    breaks: set[int] = set()
    for component in uf.components():
        breaks.add(len(order))
        order.extend(_order_component(component, scores))
    return LinearEmbedding(order=order, breaks=breaks)


def _order_component(component: list[int], scores: ScoreMatrix) -> list[int]:
    if len(component) <= 2:
        return sorted(component)

    index = {original: local for local, original in enumerate(component)}
    size = len(component)
    weight = np.zeros((size, size))
    for local_i, original_i in enumerate(component):
        for original_j in scores.scored_neighbors(original_i):
            local_j = index.get(original_j)
            if local_j is None or local_j <= local_i:
                continue
            score = scores.get(original_i, original_j)
            if score > 0:
                weight[local_i, local_j] = score
                weight[local_j, local_i] = score

    degree = weight.sum(axis=1)
    laplacian = np.diag(degree) - weight
    eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    # Eigenvalues ascend; index 0 is the trivial constant vector.
    fiedler = eigenvectors[:, 1]
    local_order = np.argsort(fiedler, kind="stable")
    return [component[local] for local in local_order]
