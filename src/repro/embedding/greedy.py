"""Greedy linear embedding (Section 5.3.1, Eq. 3).

Orders records so that likely duplicates sit close together: the next
position is filled by the unplaced record maximizing the
distance-decayed similarity to the already-placed prefix,

    pi_i = argmax_k  sum_{j<i} P(pi_j, c_k) * alpha^(i-j-1),

with decay ``alpha`` in (0, 1).  When no unplaced record has positive
decayed similarity to the prefix, the embedding "restarts" at the best
remaining seed and records a *break* — segments never straddle a break,
which both speeds up and sharpens the downstream segmentation DP.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..clustering.correlation import ScoreMatrix


@dataclass
class LinearEmbedding:
    """A linear arrangement of positions plus restart break points.

    Attributes:
        order: Permutation of 0..n-1 (original positions in embed order).
        breaks: Indices *b* into ``order`` such that the arrangement
            restarted at ``order[b]`` — no duplicate group should span a
            break.
    """

    order: list[int]
    breaks: set[int] = field(default_factory=set)

    @property
    def n(self) -> int:
        return len(self.order)

    def position_of(self) -> dict[int, int]:
        """Return original position → embedding index."""
        return {original: idx for idx, original in enumerate(self.order)}

    def cost(self, scores: ScoreMatrix) -> float:
        """Linear-arrangement objective: sum |pi_i - pi_j| * max(P_ij, 0).

        Lower is better — the quantity Section 5.3.1's embedding problem
        minimizes (restricted to positive similarities).
        """
        position = self.position_of()
        total = 0.0
        for i, j, score in scores.scored_pairs():
            if score > 0:
                total += abs(position[i] - position[j]) * score
        return total


def greedy_embedding(
    scores: ScoreMatrix,
    alpha: float = 0.75,
    seed_by: str = "degree",
) -> LinearEmbedding:
    """Compute the Eq. 3 greedy arrangement of positions 0..n-1.

    Args:
        scores: Sparse pairwise scores.
        alpha: Decay factor in (0, 1); similarity of positions *d* steps
            back is discounted by ``alpha ** d``.
        seed_by: How to choose the first record of each run —
            ``"degree"`` (largest total positive score, the default) or
            ``"first"`` (lowest index; deterministic for tests).

    Maintains, for every unplaced record, its decayed similarity to the
    placed prefix; each placement decays all scores by ``alpha`` and adds
    the new record's edges, so the whole embedding costs
    O(n^2 + n * avg_degree) with NumPy vector updates.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if seed_by not in ("degree", "first"):
        raise ValueError(f"seed_by must be 'degree' or 'first', got {seed_by!r}")
    n = scores.n
    if n == 0:
        return LinearEmbedding(order=[])

    positive_degree = np.zeros(n)
    for i, j, score in scores.scored_pairs():
        if score > 0:
            positive_degree[i] += score
            positive_degree[j] += score

    decayed = np.zeros(n)
    placed = np.zeros(n, dtype=bool)
    order: list[int] = []
    breaks: set[int] = set()

    def pick_seed() -> int:
        candidates = np.flatnonzero(~placed)
        if seed_by == "degree":
            return int(candidates[np.argmax(positive_degree[candidates])])
        return int(candidates[0])

    def place(k: int) -> None:
        placed[k] = True
        order.append(k)
        decayed[:] *= alpha
        for j in scores.scored_neighbors(k):
            if not placed[j]:
                decayed[j] += scores.get(k, j)

    seed_record = pick_seed()
    place(seed_record)
    breaks.add(0)

    while len(order) < n:
        masked = np.where(placed, -np.inf, decayed)
        best = int(np.argmax(masked))
        if masked[best] <= 0.0:
            best = pick_seed()
            breaks.add(len(order))
            decayed[:] = 0.0
        place(best)
    return LinearEmbedding(order=order, breaks=breaks)


def random_embedding(n: int, seed: int = 0) -> LinearEmbedding:
    """A uniformly random arrangement — the embedding-quality baseline."""
    rng = np.random.default_rng(seed)
    return LinearEmbedding(order=[int(x) for x in rng.permutation(n)])
