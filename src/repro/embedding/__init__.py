"""Linear embeddings and the R-best Top-K segmentation DP."""

from .greedy import LinearEmbedding, greedy_embedding, random_embedding
from .segmentation import (
    Segmentation,
    answer_log_mass,
    auto_max_span,
    SegmentScoreTable,
    TopKAnswer,
    best_partition,
    candidate_thresholds,
    top_k_answers,
    top_r_segmentations,
)
from .spectral import spectral_embedding

__all__ = [
    "LinearEmbedding",
    "SegmentScoreTable",
    "Segmentation",
    "TopKAnswer",
    "answer_log_mass",
    "auto_max_span",
    "best_partition",
    "candidate_thresholds",
    "greedy_embedding",
    "random_embedding",
    "spectral_embedding",
    "top_k_answers",
    "top_r_segmentations",
]
