"""R highest-scoring Top-K answers via segmentation DP (Section 5.3.2).

Records are first arranged linearly (:mod:`repro.embedding.greedy` /
``spectral``); a *grouping* is then any segmentation of that ordering.
For a threshold ``l`` the paper's recurrence builds ``Ans_R(k, i, l)`` —
the R best scores over the first ``i`` records using exactly ``k``
"large" segments (weight > ``l``) with every other segment's weight
<= ``l``; the answer is ``maxR_l Ans_R(K, n, l)``.  The k large segments
of a feasible segmentation are therefore exactly its K largest groups.

Generalizations over the paper's exposition, both needed because our
items are *weighted* collapsed groups rather than unit records:

* segment size is total member weight, and the threshold ``l`` ranges
  over the achievable distinct segment weights (all of them when few;
  an evenly-spaced subsample capped at ``max_thresholds`` otherwise —
  subsampling can only hide candidate answers, never corrupt scores);
* segments are capped at ``max_span`` items and never straddle an
  embedding *break* (the "not considering any cluster including too many
  dissimilar points" speed-up the paper describes).

Scores are the group-decomposable Eq. 2 terms, computed incrementally so
the whole segment-score table costs O(n * max_span * avg_degree).
"""

from __future__ import annotations

import bisect
import heapq
import math
from dataclasses import dataclass

from ..clustering.correlation import ScoreMatrix
from .greedy import LinearEmbedding


@dataclass(frozen=True)
class Segmentation:
    """One scored segmentation of the embedding.

    Attributes:
        segments: ``(start, end)`` inclusive index ranges in embedding
            order, covering 0..n-1.
        big_flags: Parallel to ``segments``; True for the K answer
            ("large") segments.
        score: Total Eq. 2 score of the segmentation.
        threshold: The weight threshold l this segmentation was found at.
    """

    segments: tuple[tuple[int, int], ...]
    big_flags: tuple[bool, ...]
    score: float
    threshold: float


@dataclass(frozen=True)
class TopKAnswer:
    """One of the R highest-scoring Top-K answers.

    Attributes:
        groups: The K answer groups as tuples of *original positions*
            (into the record/group sequence the ScoreMatrix was built
            over), in non-increasing weight order.
        weights: Group weights, parallel to ``groups``.
        score: Best segmentation score supporting this answer.
        n_supporting: Number of enumerated segmentations sharing exactly
            this Top-K answer (distinct small-segment arrangements).
    """

    groups: tuple[tuple[int, ...], ...]
    weights: tuple[float, ...]
    score: float
    n_supporting: int
    log_mass: float | None = None


def auto_max_span(scores: ScoreMatrix, slack: int = 4, cap: int | None = None) -> int:
    """Pick a segment-length cap from the data: no duplicate group can
    outgrow its positive-score connected component, so the largest
    component size (plus *slack*) is a safe span bound.  *cap* optionally
    limits the result for very dense inputs.
    """
    from ..graphs.union_find import UnionFind

    uf = UnionFind(scores.n)
    for i, j, score in scores.scored_pairs():
        if score > 0:
            uf.union(i, j)
    largest = max(
        (uf.component_size(i) for i in range(scores.n)), default=1
    )
    span = largest + slack
    if cap is not None:
        span = min(span, cap)
    return max(span, 1)


class SegmentScoreTable:
    """Incrementally computed Eq. 2 scores of contiguous segments."""

    def __init__(
        self,
        scores: ScoreMatrix,
        embedding: LinearEmbedding,
        max_span: int,
    ):
        if max_span < 1:
            raise ValueError(f"max_span must be >= 1, got {max_span}")
        self._order = embedding.order
        n = len(self._order)
        position_of = embedding.position_of()

        # neg_all[i]: total -P over i's negative scored edges (the
        # "cross" contribution of a singleton segment).
        neg_all = [0.0] * n
        # Adjacency in embedding coordinates: (other_index, score).
        adjacency: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        for orig_i, orig_j, score in scores.scored_pairs():
            i = position_of[orig_i]
            j = position_of[orig_j]
            adjacency[i].append((j, score))
            adjacency[j].append((i, score))
            if score < 0:
                neg_all[i] -= score
                neg_all[j] -= score

        # table[a][s] = Eq. 2 score of the segment [a, a+s] (inclusive).
        self._table: list[list[float]] = []
        for a in range(n):
            row = [neg_all[a]]
            limit = min(n - 1, a + max_span - 1)
            for b in range(a + 1, limit + 1):
                pos_in = 0.0
                neg_in = 0.0
                for other, score in adjacency[b]:
                    if a <= other < b:
                        if score > 0:
                            pos_in += score
                        else:
                            neg_in -= score
                row.append(row[-1] + 2.0 * pos_in + neg_all[b] - 2.0 * neg_in)
            self._table.append(row)

    def score(self, a: int, b: int) -> float:
        """Eq. 2 score of the inclusive segment [a, b] in embedding order."""
        return self._table[a][b - a]


def _prefix_weights(embedding: LinearEmbedding, weights: list[float]) -> list[float]:
    prefix = [0.0]
    for original in embedding.order:
        prefix.append(prefix[-1] + weights[original])
    return prefix


def _segment_start_limit(embedding: LinearEmbedding, n: int) -> list[int]:
    """For each end index i-1, the smallest allowed segment start.

    A segment may not contain a break at any index other than its own
    start, so the segment ending at e must start at or after the last
    break <= e.
    """
    last_break = 0
    limits = []
    for e in range(n):
        if e in embedding.breaks:
            last_break = e
        limits.append(last_break)
    return limits


def candidate_thresholds(
    embedding: LinearEmbedding,
    weights: list[float],
    max_span: int,
    max_thresholds: int = 32,
    k: int | None = None,
) -> list[float]:
    """Distinct achievable segment weights usable as the DP threshold l.

    Includes 0 (every non-answer record is a singleton below every
    answer group).  Values are kept **exact** — no rounding: the DP
    separates the K-th answer group from the (K+1)-th by a strict
    ``weight > l`` test, so collapsing two near-tie weights into one
    would make the separating threshold unrepresentable and silently
    drop answers.

    When the distinct count exceeds *max_thresholds* an evenly-spaced
    subsample (always keeping the extremes) is returned — plus, when *k*
    is given, the values adjacent to the K-th largest single-position
    weight and to the K-th largest achievable segment weight, so the
    boundary the Top-K answer actually pivots on survives subsampling.
    """
    n = len(embedding.order)
    prefix = _prefix_weights(embedding, weights)
    start_limit = _segment_start_limit(embedding, n)
    values = {0.0}
    for end in range(n):
        lo = max(start_limit[end], end - max_span + 1)
        for start in range(lo, end + 1):
            values.add(prefix[end + 1] - prefix[start])
    ordered = sorted(values)
    if len(ordered) <= max_thresholds:
        return ordered
    step = (len(ordered) - 1) / (max_thresholds - 1)
    picked = {ordered[int(round(idx * step))] for idx in range(max_thresholds)}
    if k is not None and k >= 1:
        pivots = []
        if k <= len(weights):
            pivots.append(sorted(weights, reverse=True)[k - 1])
        if k <= len(ordered):
            pivots.append(ordered[-k])
        for pivot in pivots:
            # Retain the pivot's neighborhood: the threshold that
            # separates the K-th group from a near-tie rival is the
            # achievable value immediately below the K-th weight.
            position = bisect.bisect_left(ordered, pivot)
            for index in (position - 1, position, position + 1):
                if 0 <= index < len(ordered):
                    picked.add(ordered[index])
    return sorted(picked)


def top_r_segmentations(
    scores: ScoreMatrix,
    embedding: LinearEmbedding,
    weights: list[float],
    k: int,
    r: int,
    max_span: int = 30,
    thresholds: list[float] | None = None,
    max_thresholds: int = 32,
) -> list[Segmentation]:
    """Run the Ans_R DP; return the R best segmentations across thresholds.

    Args:
        scores: Pairwise Eq. 2 scores over original positions.
        embedding: Linear arrangement (with breaks) of those positions.
        weights: Weight of each original position (collapsed group size).
        k: Number of large (answer) segments required.
        r: Number of segmentations to return.
        max_span: Maximum items per segment.
        thresholds: Explicit threshold list; computed when None.
        max_thresholds: Cap on auto-computed thresholds.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    n = len(embedding.order)
    if n == 0 or n < k:
        return []
    if len(weights) != scores.n:
        raise ValueError(f"{len(weights)} weights for {scores.n} positions")

    table = SegmentScoreTable(scores, embedding, max_span)
    prefix = _prefix_weights(embedding, weights)
    start_limit = _segment_start_limit(embedding, n)
    if thresholds is None:
        thresholds = candidate_thresholds(
            embedding, weights, max_span, max_thresholds, k=k
        )

    best: list[Segmentation] = []
    seen: set[tuple] = set()
    for threshold in thresholds:
        for segmentation in _dp_for_threshold(
            table, prefix, start_limit, n, k, r, max_span, threshold
        ):
            key = (segmentation.segments, segmentation.big_flags)
            if key in seen:
                continue
            seen.add(key)
            best.append(segmentation)
    # Equal-score segmentations are ordered canonically (by their segment
    # layout), not by threshold-iteration order: the uncertainty layer
    # treats this list as an enumeration of possible worlds, so the cut
    # at r must not depend on which threshold happened to surface a
    # tied segmentation first.
    best.sort(key=_segmentation_order)
    return best[:r]


def _segmentation_order(segmentation: Segmentation) -> tuple:
    """Total order for enumerated segmentations: score descending, then
    the segment layout lexicographically — deterministic under ties."""
    return (
        -segmentation.score,
        segmentation.segments,
        segmentation.big_flags,
    )


def _dp_for_threshold(
    table: SegmentScoreTable,
    prefix: list[float],
    start_limit: list[int],
    n: int,
    k: int,
    r: int,
    max_span: int,
    threshold: float,
) -> list[Segmentation]:
    """One Ans_R(k, i, l) table for a fixed threshold l."""
    # dp[kk][i] = up to r entries (score, prev_i, prev_kk, prev_entry_idx,
    # seg_start); i = items consumed.
    empty: list[tuple] = []
    dp: list[list[list[tuple]]] = [
        [empty for _ in range(n + 1)] for _ in range(k + 1)
    ]
    dp[0][0] = [(0.0, -1, -1, -1, -1)]

    for i in range(1, n + 1):
        end = i - 1
        lo = max(start_limit[end], i - max_span)
        for kk in range(k + 1):
            candidates: list[tuple] = []
            for j in range(lo, i):
                seg_weight = prefix[i] - prefix[j]
                seg_score = table.score(j, end)
                if seg_weight > threshold:
                    source_k = kk - 1
                else:
                    source_k = kk
                if source_k < 0:
                    continue
                for entry_idx, entry in enumerate(dp[source_k][j]):
                    candidates.append(
                        (entry[0] + seg_score, j, source_k, entry_idx, j)
                    )
            if candidates:
                dp[kk][i] = heapq.nlargest(r, candidates, key=lambda e: e[0])
            else:
                dp[kk][i] = empty

    results = []
    for entry_idx, entry in enumerate(dp[k][n]):
        segments, flags = _reconstruct(dp, prefix, threshold, k, n, entry_idx)
        results.append(
            Segmentation(
                segments=segments,
                big_flags=flags,
                score=entry[0],
                threshold=threshold,
            )
        )
    return results


def _reconstruct(
    dp: list[list[list[tuple]]],
    prefix: list[float],
    threshold: float,
    k: int,
    n: int,
    entry_idx: int,
) -> tuple[tuple[tuple[int, int], ...], tuple[bool, ...]]:
    segments: list[tuple[int, int]] = []
    flags: list[bool] = []
    kk, i, idx = k, n, entry_idx
    while i > 0:
        entry = dp[kk][i][idx]
        _, j, prev_k, prev_idx, _ = entry
        segments.append((j, i - 1))
        flags.append(prefix[i] - prefix[j] > threshold)
        kk, i, idx = prev_k, j, prev_idx
    segments.reverse()
    flags.reverse()
    return tuple(segments), tuple(flags)


def top_k_answers(
    scores: ScoreMatrix,
    embedding: LinearEmbedding,
    weights: list[float],
    k: int,
    r: int,
    max_span: int = 30,
    max_thresholds: int = 32,
    oversample: int = 4,
    rank_by: str = "score",
) -> list[TopKAnswer]:
    """Return the R highest-scoring distinct Top-K *answers*.

    Different segmentations that arrange the non-answer records
    differently but agree on the K large groups are the *same* Top-K
    answer; this wrapper enumerates ``r * oversample`` segmentations,
    merges them by answer, and returns the R best (each answer scored by
    its best supporting segmentation, with ``n_supporting`` recording how
    many segmentations agreed).

    ``rank_by="mass"`` additionally computes each answer's Gibbs
    log-mass over all supporting segmentations at its best threshold
    (:func:`answer_log_mass` — the paper's sum-over-groupings answer
    score) and ranks by that instead of the single best score.
    """
    if rank_by not in ("score", "mass"):
        raise ValueError(f"rank_by must be 'score' or 'mass', got {rank_by!r}")
    segmentations = top_r_segmentations(
        scores,
        embedding,
        weights,
        k=k,
        r=r * oversample,
        max_span=max_span,
        max_thresholds=max_thresholds,
    )
    merged: dict[tuple, TopKAnswer] = {}
    best_segmentation: dict[tuple, Segmentation] = {}
    for segmentation in segmentations:
        groups: list[tuple[tuple[int, ...], float]] = []
        for (start, end), is_big in zip(
            segmentation.segments, segmentation.big_flags
        ):
            if not is_big:
                continue
            members = tuple(
                sorted(embedding.order[idx] for idx in range(start, end + 1))
            )
            weight = sum(weights[m] for m in members)
            groups.append((members, weight))
        groups.sort(key=lambda g: (-g[1], g[0]))
        key = tuple(members for members, _ in groups)
        existing = merged.get(key)
        if existing is None:
            merged[key] = TopKAnswer(
                groups=key,
                weights=tuple(weight for _, weight in groups),
                score=segmentation.score,
                n_supporting=1,
            )
            best_segmentation[key] = segmentation
        else:
            if segmentation.score > existing.score:
                best_segmentation[key] = segmentation
            merged[key] = TopKAnswer(
                groups=existing.groups,
                weights=existing.weights,
                score=max(existing.score, segmentation.score),
                n_supporting=existing.n_supporting + 1,
            )

    if rank_by == "mass":
        with_mass = []
        for key, answer in merged.items():
            mass = answer_log_mass(
                scores,
                embedding,
                weights,
                best_segmentation[key],
                max_span=max_span,
            )
            with_mass.append(
                TopKAnswer(
                    groups=answer.groups,
                    weights=answer.weights,
                    score=answer.score,
                    n_supporting=answer.n_supporting,
                    log_mass=mass,
                )
            )
        ranked = sorted(
            with_mass, key=lambda a: (-(a.log_mass or 0.0), a.groups)
        )
    else:
        ranked = sorted(merged.values(), key=lambda a: (-a.score, a.groups))
    return ranked[:r]


def answer_log_mass(
    scores: ScoreMatrix,
    embedding: LinearEmbedding,
    weights: list[float],
    segmentation: Segmentation,
    max_span: int = 30,
    temperature: float = 1.0,
) -> float:
    """Gibbs log-mass of a Top-K answer, summed over its segmentations.

    Section 5 defines the score of a Top-K answer as the *sum* of the
    scores of all groupings whose K largest groups form the answer —
    exponential in general, but tractable over segmentations: fixing the
    answer's big segments, every maximal run of remaining positions can
    be segmented freely into parts of weight <= the answer's threshold,
    and a log-sum-exp dynamic program aggregates
    ``log sum exp(score / temperature)`` over all of them.

    Returns the total log-mass: the fixed big segments' scores plus each
    gap's aggregated log-mass.  Compare masses of answers found at the
    *same* threshold; exponentiating differences gives relative Gibbs
    probabilities.
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    n = len(embedding.order)
    table = SegmentScoreTable(scores, embedding, max_span)
    prefix = _prefix_weights(embedding, weights)
    start_limit = _segment_start_limit(embedding, n)
    threshold = segmentation.threshold

    total = 0.0
    gap_runs: list[tuple[int, int]] = []
    cursor = 0
    for (start, end), is_big in zip(segmentation.segments, segmentation.big_flags):
        if is_big:
            if cursor < start:
                gap_runs.append((cursor, start - 1))
            total += table.score(start, end) / temperature
            cursor = end + 1
    if cursor < n:
        gap_runs.append((cursor, n - 1))

    for gap_start, gap_end in gap_runs:
        total += _gap_log_mass(
            table,
            prefix,
            start_limit,
            gap_start,
            gap_end,
            threshold,
            max_span,
            temperature,
        )
    return total


def _gap_log_mass(
    table: SegmentScoreTable,
    prefix: list[float],
    start_limit: list[int],
    gap_start: int,
    gap_end: int,
    threshold: float,
    max_span: int,
    temperature: float,
) -> float:
    """log sum over segmentations of [gap_start, gap_end] with every
    part's weight <= threshold (and span/break limits)."""
    neg_inf = float("-inf")
    size = gap_end - gap_start + 2
    log_mass = [neg_inf] * size  # index i = positions consumed
    log_mass[0] = 0.0
    for i in range(1, size):
        end = gap_start + i - 1
        lo = max(start_limit[end], end - max_span + 1, gap_start)
        acc = neg_inf
        for j in range(lo, end + 1):
            prev = log_mass[j - gap_start]
            if prev == neg_inf:
                continue
            seg_weight = prefix[end + 1] - prefix[j]
            if threshold >= 0 and seg_weight > threshold:
                continue
            candidate = prev + table.score(j, end) / temperature
            acc = _logaddexp(acc, candidate)
        log_mass[i] = acc
    return log_mass[-1]


def _logaddexp(a: float, b: float) -> float:
    if a == float("-inf"):
        return b
    if b == float("-inf"):
        return a
    if a < b:
        a, b = b, a
    return a + math.log1p(math.exp(b - a))


def best_partition(
    scores: ScoreMatrix,
    embedding: LinearEmbedding,
    max_span: int = 30,
) -> list[list[int]]:
    """Best unconstrained segmentation as a plain partition (Figure 7 mode).

    With no Top-K structure needed (k plays no role), the best grouping
    is the single-threshold DP at l = +inf where every segment is
    "small": a classic 1-D segmentation maximizing total Eq. 2 score.
    Returns groups of original positions, largest first.
    """
    n = len(embedding.order)
    if n == 0:
        return []
    table = SegmentScoreTable(scores, embedding, max_span)
    start_limit = _segment_start_limit(embedding, n)

    neg_inf = float("-inf")
    best_score = [neg_inf] * (n + 1)
    best_prev = [-1] * (n + 1)
    best_score[0] = 0.0
    for i in range(1, n + 1):
        end = i - 1
        lo = max(start_limit[end], i - max_span)
        for j in range(lo, i):
            if best_score[j] == neg_inf:
                continue
            candidate = best_score[j] + table.score(j, end)
            if candidate > best_score[i]:
                best_score[i] = candidate
                best_prev[i] = j
    partition: list[list[int]] = []
    i = n
    while i > 0:
        j = best_prev[i]
        partition.append([embedding.order[idx] for idx in range(j, i)])
        i = j
    partition.sort(key=len, reverse=True)
    return partition
