"""Command-line interface: Top-K count queries over a CSV of records.

Usage::

    python -m repro topk      --input mentions.csv --field name --k 5
    python -m repro rank      --input mentions.csv --field name --k 5
    python -m repro threshold --input mentions.csv --field name --min-weight 40
    python -m repro stream    --input mentions.csv --field name --k 5 \\
                              --state-dir state/ --checkpoint-every 1000
    python -m repro checkpoint --state-dir state/ --field name
    python -m repro restore    --state-dir state/ --field name
    python -m repro health     --state-dir state/ --field name
    python -m repro serve      --state-dir state/ --field name --port 8080

The CSV needs a header row.  ``--field`` names the entity-mention column;
``--weight-field`` (optional) names a numeric per-record weight.  The
generic predicate suite used is: sufficient = exact match of the field,
necessary = character-3-gram overlap above ``--ngram-threshold``; the
final pairwise criterion is a hand-weighted name similarity shifted by
``--score-bias``.  For domain-tuned predicates use the library API.
"""

from __future__ import annotations

import argparse
import csv
import json
import math
import os
import sys
from collections.abc import Sequence

from .core.health import HealthMonitor
from .core.incremental import IncrementalTopK
from .core.persistence import WalCorruptionError, has_state
from .core.pruned_dedup import PrunedDedupResult
from .core.rank_query import thresholded_rank_query, topk_rank_query
from .core.records import RecordStore
from .core.resilience import ExecutionPolicy
from .core.topk import topk_count_query
from .uncertainty import topk_interval_query
from .core.verification import PipelineCounters, VerificationContext
from .observability import (
    MetricsRegistry,
    Tracer,
    prometheus_text,
    render_explain,
    trace_to_jsonl,
)
from .predicates.base import PredicateLevel
from .predicates.library import ExactFieldsPredicate, NgramOverlapPredicate
from .scoring.pairwise import CachedScorer, WeightedScorer
from .similarity.vectorize import PairFeaturizer


def load_csv(
    path: str, field: str, weight_field: str | None
) -> RecordStore:
    """Load *path* into a RecordStore; validates the named columns.

    Malformed input raises :class:`ValueError` (``main`` turns it —
    and I/O errors — into a one-line ``error:`` message and exit 2
    instead of a traceback).
    """
    rows: list[dict[str, str]] = []
    weights: list[float] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or field not in reader.fieldnames:
            raise ValueError(
                f"column {field!r} not found in {path} "
                f"(columns: {reader.fieldnames})"
            )
        if weight_field is not None and weight_field not in reader.fieldnames:
            raise ValueError(
                f"weight column {weight_field!r} not found in {path}"
            )
        for row in reader:
            rows.append({k: (v or "") for k, v in row.items()})
            if weight_field is None:
                weights.append(1.0)
            else:
                try:
                    weight = float(row[weight_field])
                except ValueError:
                    raise ValueError(
                        f"non-numeric weight {row[weight_field]!r} "
                        f"(row {len(rows)} of {path})"
                    ) from None
                if not math.isfinite(weight):
                    # nan/inf weights silently poison every weight sum,
                    # bound, and comparison downstream — reject up front.
                    raise ValueError(
                        f"non-finite weight {row[weight_field]!r} "
                        f"(row {len(rows)} of {path}); weights must be "
                        f"finite numbers"
                    )
                weights.append(weight)
    if not rows:
        raise ValueError(f"{path} contains no data rows")
    return RecordStore.from_rows(rows, weights=weights)


def generic_levels(field: str, ngram_threshold: float) -> list[PredicateLevel]:
    """The CLI's generic (exact, n-gram-overlap) predicate level."""
    return [
        PredicateLevel(
            sufficient=ExactFieldsPredicate([field], name=f"exact-{field}"),
            necessary=NgramOverlapPredicate(
                field, ngram_threshold, name=f"ngram-{field}"
            ),
            name="cli-generic",
        )
    ]


def generic_scorer(field: str, bias: float) -> CachedScorer:
    """Hand-weighted similarity scorer over the query field."""
    from .similarity.measures import jaccard
    from .similarity.strings import jaro_winkler
    from .similarity.tokenize import cached_ngram_set, cached_word_set, normalize

    featurizer = PairFeaturizer(
        [
            (
                "3gram_jaccard",
                lambda a, b: jaccard(
                    cached_ngram_set(a[field]), cached_ngram_set(b[field])
                ),
            ),
            (
                "word_jaccard",
                lambda a, b: jaccard(
                    cached_word_set(a[field]), cached_word_set(b[field])
                ),
            ),
            (
                "jaro_winkler",
                lambda a, b: jaro_winkler(normalize(a[field]), normalize(b[field])),
            ),
        ]
    )
    return CachedScorer(
        WeightedScorer(featurizer, weights=[2.0, 2.0, 2.0], bias=bias)
    )


def _common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", required=True, help="CSV file to query")
    parser.add_argument(
        "--field", required=True, help="entity-mention column name"
    )
    parser.add_argument(
        "--weight-field", default=None, help="numeric weight column (optional)"
    )
    parser.add_argument(
        "--ngram-threshold",
        type=float,
        default=0.6,
        help="necessary-predicate 3-gram overlap threshold (default 0.6)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print verification-work counters (predicate/signature "
        "evaluations, cache traffic, index builds, per-stage wall time) "
        "to stderr",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget for the query; when it expires the best "
        "answer derivable so far is returned, marked DEGRADED on stderr",
    )
    parser.add_argument(
        "--on-predicate-error",
        choices=("degrade", "raise"),
        default=None,
        help="contain exceptions from predicate/scorer code with "
        "role-safe fallback verdicts ('degrade') or propagate them "
        "('raise'); implies resilient execution even without --deadline",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the sharded parallel dedup pipeline; "
        "results are bit-identical to serial execution (default: "
        "$REPRO_WORKERS or 1)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the query's span trace as JSON lines (one span per "
        "line, full mode: wall times, counter deltas, events)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write a Prometheus text-format metrics snapshot of the run",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print a human-readable span tree of the query's execution "
        "(stages, wall times, pruning decisions) to stderr",
    )


def _store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        choices=("memory", "columnar"),
        default="memory",
        help="record store backend: 'columnar' compacts checkpoints "
        "into memory-mapped array generations, so large corpora "
        "cold-start by mapping instead of replaying (answers are "
        "bit-identical either way)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Top-K count queries over records with noisy duplicates",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    topk = commands.add_parser("topk", help="K largest entity groups")
    _common_arguments(topk)
    topk.add_argument("--k", type=int, default=10)
    topk.add_argument("--r", type=int, default=1, help="alternative answers")
    topk.add_argument(
        "--score-bias",
        type=float,
        default=-3.0,
        help="pairwise scorer bias (more negative = stricter matching)",
    )
    topk.add_argument(
        "--semantics",
        choices=("count", "interval"),
        default="count",
        help="answer semantics: 'count' returns point counts per entity, "
        "'interval' returns [lo, hi] count bounds and top-K membership "
        "probabilities aggregated over the --worlds best segmentations",
    )
    topk.add_argument(
        "--worlds",
        type=int,
        default=8,
        metavar="R",
        help="possible worlds (R-best segmentations) to aggregate for "
        "--semantics interval (default 8)",
    )
    topk.add_argument(
        "--min-probability",
        type=float,
        default=0.0,
        metavar="P",
        help="drop entities whose top-K membership probability is "
        "certifiably below P (interval semantics only; default 0)",
    )

    rank = commands.add_parser("rank", help="rank order of the K largest groups")
    _common_arguments(rank)
    rank.add_argument("--k", type=int, default=10)

    threshold = commands.add_parser(
        "threshold", help="all groups of total weight >= --min-weight"
    )
    _common_arguments(threshold)
    threshold.add_argument("--min-weight", type=float, required=True)

    stream = commands.add_parser(
        "stream",
        help="feed records into a (durable) incremental engine and query it",
    )
    _common_arguments(stream)
    stream.add_argument("--k", type=int, default=10)
    stream.add_argument(
        "--state-dir",
        default=None,
        help="durable state directory: inserts are WAL-journaled and the "
        "stream resumes from existing state on the next run (omit for a "
        "purely in-memory stream)",
    )
    stream.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="snapshot the stream state after every N inserts and once "
        "at the end (0 = never; requires --state-dir)",
    )
    _store_argument(stream)

    checkpoint = commands.add_parser(
        "checkpoint",
        help="snapshot a stream state directory and prune its WAL",
    )
    checkpoint.add_argument("--state-dir", required=True)
    checkpoint.add_argument(
        "--field", required=True, help="entity-mention column name"
    )
    checkpoint.add_argument(
        "--ngram-threshold",
        type=float,
        default=0.6,
        help="necessary-predicate 3-gram overlap threshold (default 0.6)",
    )
    _store_argument(checkpoint)

    restore = commands.add_parser(
        "restore",
        help="recover a stream state directory and report what was rebuilt",
    )
    restore.add_argument("--state-dir", required=True)
    restore.add_argument(
        "--field", required=True, help="entity-mention column name"
    )
    restore.add_argument(
        "--ngram-threshold",
        type=float,
        default=0.6,
        help="necessary-predicate 3-gram overlap threshold (default 0.6)",
    )
    _store_argument(restore)

    health = commands.add_parser(
        "health",
        help="readiness/liveness report over breakers and durable state",
    )
    health.add_argument(
        "--state-dir",
        default=None,
        help="durable state directory to inspect (restores it read-only; "
        "requires --field)",
    )
    health.add_argument(
        "--field", default=None, help="entity-mention column name"
    )
    health.add_argument(
        "--ngram-threshold",
        type=float,
        default=0.6,
        help="necessary-predicate 3-gram overlap threshold (default 0.6)",
    )
    health.add_argument(
        "--audit",
        action="store_true",
        help="additionally run the full state audit (O(records))",
    )
    health.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the health gauges as a Prometheus text snapshot",
    )
    health.add_argument(
        "--json",
        action="store_true",
        help="emit the full HealthSnapshot as one JSON object instead "
        "of the line report (same exit code contract)",
    )

    serve = commands.add_parser(
        "serve",
        help="run the always-on HTTP query service over a (durable) "
        "incremental engine",
    )
    serve.add_argument(
        "--field", required=True, help="entity-mention column name"
    )
    serve.add_argument(
        "--ngram-threshold",
        type=float,
        default=0.6,
        help="necessary-predicate 3-gram overlap threshold (default 0.6)",
    )
    serve.add_argument(
        "--score-bias",
        type=float,
        default=-3.0,
        help="pairwise scorer bias for interval-semantics queries "
        "(more negative = stricter matching)",
    )
    serve.add_argument(
        "--input",
        default=None,
        help="optional CSV to seed the engine with before serving",
    )
    serve.add_argument(
        "--weight-field", default=None, help="numeric weight column of --input"
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        help="durable state directory (WAL-journaled inserts, restored "
        "on start; omit for a purely in-memory service)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 = ephemeral; the bound port is announced on "
        "stdout as 'serving on HOST:PORT')",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="checkpoint after every N applied inserts (0 = only on "
        "drain; requires --state-dir)",
    )
    _store_argument(serve)
    serve.add_argument(
        "--max-pending-queries",
        type=int,
        default=32,
        help="admission bound on queries in flight (beyond: 429)",
    )
    serve.add_argument(
        "--max-concurrent-queries",
        type=int,
        default=2,
        help="reader threads actually executing queries",
    )
    serve.add_argument(
        "--max-pending-inserts",
        type=int,
        default=256,
        help="admission bound on accepted-but-unapplied inserts",
    )
    serve.add_argument(
        "--default-deadline",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="deadline stamped on queries that do not carry one; an "
        "expiring query returns an explicitly degraded anytime answer",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="budget for the SIGTERM drain sequence",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes per query (sharded pipeline; default 1)",
    )
    serve.add_argument(
        "--metrics",
        action="store_true",
        help="enable the Prometheus /metrics endpoint",
    )

    generate = commands.add_parser(
        "generate", help="write a synthetic labeled dataset to CSV"
    )
    generate.add_argument(
        "--kind",
        choices=("citations", "students", "addresses", "restaurants"),
        default="citations",
    )
    generate.add_argument("--n", type=int, default=2000, help="record count")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True, help="CSV path to write")
    return parser


def policy_from_args(args: argparse.Namespace) -> ExecutionPolicy | None:
    """Build the resilience policy requested on the command line.

    Returns None (fully unguarded execution, bit-identical to the
    pre-resilience pipeline) unless ``--deadline`` or
    ``--on-predicate-error`` was given.
    """
    if args.deadline is None and args.on_predicate_error is None:
        return None
    return ExecutionPolicy(
        deadline_seconds=args.deadline,
        on_error=args.on_predicate_error or "degrade",
    )


_EXPLAIN_COUNTER_KEYS = (
    "predicate_evaluations",
    "signature_evaluations",
    "cache_hits",
    "index_builds",
)


def observability_from_args(
    args: argparse.Namespace,
) -> tuple[Tracer | None, MetricsRegistry | None]:
    """Build the tracer/registry the export flags ask for (None = off)."""
    want_trace = args.trace_out is not None or args.explain
    tracer = Tracer() if want_trace else None
    metrics = MetricsRegistry() if args.metrics_out is not None else None
    return tracer, metrics


def context_from_args(
    args: argparse.Namespace,
) -> tuple[VerificationContext | None, Tracer | None, MetricsRegistry | None]:
    """A context armed for the requested exports, or None when all off.

    A None context keeps the handlers on the query functions' default —
    the zero-overhead NullTracer/NullMetrics path.
    """
    tracer, metrics = observability_from_args(args)
    if tracer is None and metrics is None:
        return None, None, None
    return VerificationContext(tracer=tracer, metrics=metrics), tracer, metrics


def export_observability(
    args: argparse.Namespace,
    tracer: Tracer | None,
    metrics: MetricsRegistry | None,
) -> None:
    """Write --trace-out / --metrics-out files and the --explain tree."""
    if args.trace_out is not None and tracer is not None:
        with open(args.trace_out, "w") as handle:
            trace_to_jsonl(tracer, handle, mode="full")
    if args.metrics_out is not None and metrics is not None:
        with open(args.metrics_out, "w") as handle:
            handle.write(prometheus_text(metrics))
    if args.explain and tracer is not None:
        print(
            render_explain(tracer, counter_keys=_EXPLAIN_COUNTER_KEYS),
            file=sys.stderr,
            end="",
        )


def _warn_degraded(reason: str) -> None:
    print(
        f"warning: DEGRADED answer — execution policy exhausted "
        f"({reason}); showing the best answer derivable from the work "
        f"completed so far",
        file=sys.stderr,
    )


_COUNTER_COLUMNS = (
    ("evals", "predicate_evaluations"),
    ("sig-evals", "signature_evaluations"),
    ("hits", "cache_hits"),
    ("misses", "cache_misses"),
    ("builds", "index_builds"),
    ("reuses", "index_reuses"),
)


def _counter_line(label: str, counters: PipelineCounters) -> str:
    cells = "  ".join(
        f"{name}={getattr(counters, attr)}" for name, attr in _COUNTER_COLUMNS
    )
    return f"{label:<12} {cells}"


def print_stats(
    counters: PipelineCounters | None,
    pruning: PrunedDedupResult | None = None,
    file=None,
) -> None:
    """Write the verification-work report for ``--stats`` to *file*.

    One line per executed level (when per-level stats are available),
    a totals line, and the per-stage wall-time breakdown.
    """
    out = file if file is not None else sys.stderr
    if counters is None:
        print("verification stats: unavailable", file=out)
        return
    print("verification stats", file=out)
    if pruning is not None:
        for stats in pruning.stats:
            if stats.counters is not None:
                print(
                    "  " + _counter_line(stats.level_name, stats.counters),
                    file=out,
                )
    print("  " + _counter_line("total", counters), file=out)
    if counters.total_contained:
        print(
            f"  contained    errors={counters.predicate_errors_contained}  "
            f"keying={counters.keying_errors_contained}  "
            f"timeouts={counters.predicate_timeouts_contained}  "
            f"scorer={counters.scorer_errors_contained}  "
            f"quarantined={counters.records_quarantined}",
            file=out,
        )
    for stage, seconds in sorted(counters.stage_seconds.items()):
        print(f"  {stage:<12} {seconds:8.3f}s", file=out)


def _run_topk_interval(args: argparse.Namespace) -> int:
    """``topk --semantics interval``: count bounds over possible worlds."""
    store = load_csv(args.input, args.field, args.weight_field)
    levels = generic_levels(args.field, args.ngram_threshold)
    scorer = generic_scorer(args.field, args.score_bias)
    context, tracer, metrics = context_from_args(args)
    result = topk_interval_query(
        store,
        args.k,
        levels,
        scorer,
        r=args.worlds,
        min_probability=args.min_probability,
        label_field=args.field,
        context=context,
        policy=policy_from_args(args),
        workers=args.workers,
    )
    export_observability(args, tracer, metrics)
    if result.degraded:
        _warn_degraded(result.degraded_reason)
    print(
        f"# {result.worlds_enumerated} world(s) aggregated"
        + (" (exact)" if result.exact else "")
        + (" — intervals collapsed" if result.collapsed else "")
    )
    for entity in result.entities:
        print(
            f"[{entity.count_lo:10.2f}, {entity.count_hi:10.2f}]  "
            f"p={entity.membership_probability:.2f}  {entity.label}"
        )
    if args.stats:
        pruning = result.pruning
        print_stats(
            pruning.counters if pruning is not None else None, pruning
        )
    return 0


def run_topk(args: argparse.Namespace) -> int:
    if args.semantics == "interval":
        return _run_topk_interval(args)
    store = load_csv(args.input, args.field, args.weight_field)
    levels = generic_levels(args.field, args.ngram_threshold)
    scorer = generic_scorer(args.field, args.score_bias)
    context, tracer, metrics = context_from_args(args)
    result = topk_count_query(
        store,
        args.k,
        levels,
        scorer,
        r=args.r,
        label_field=args.field,
        context=context,
        policy=policy_from_args(args),
        workers=args.workers,
    )
    export_observability(args, tracer, metrics)
    if result.degraded:
        _warn_degraded(result.degraded_reason)
    for rank_index, answer in enumerate(result.answers, start=1):
        if len(result.answers) > 1:
            print(f"answer #{rank_index} (p={answer.probability:.2f})")
        for entity in answer.entities:
            print(f"{entity.weight:12.2f}  {entity.label}")
        if rank_index < len(result.answers):
            print()
    if args.stats:
        pruning = result.pruning
        print_stats(
            pruning.counters if pruning is not None else None, pruning
        )
    return 0


def run_rank(args: argparse.Namespace) -> int:
    store = load_csv(args.input, args.field, args.weight_field)
    levels = generic_levels(args.field, args.ngram_threshold)
    context, tracer, metrics = context_from_args(args)
    result = topk_rank_query(
        store,
        args.k,
        levels,
        context=context,
        policy=policy_from_args(args),
        workers=args.workers,
    )
    export_observability(args, tracer, metrics)
    if result.degraded:
        _warn_degraded(result.degraded_reason)
    for entry in result.ranking[: args.k]:
        marker = " " if entry.resolved else "?"
        label = store[entry.representative_id][args.field]
        print(
            f"{entry.weight:12.2f}  (u<={entry.upper_bound:12.2f}) {marker} "
            f"{label}"
        )
    if args.stats:
        print_stats(result.counters)
    return 0


def run_threshold(args: argparse.Namespace) -> int:
    store = load_csv(args.input, args.field, args.weight_field)
    levels = generic_levels(args.field, args.ngram_threshold)
    context, tracer, metrics = context_from_args(args)
    result = thresholded_rank_query(
        store,
        args.min_weight,
        levels,
        context=context,
        policy=policy_from_args(args),
        workers=args.workers,
    )
    export_observability(args, tracer, metrics)
    if result.degraded:
        _warn_degraded(result.degraded_reason)
    status = "certain" if result.certain else "may need exact evaluation"
    print(f"# groups with weight >= {args.min_weight} ({status})")
    for entry in result.ranking:
        label = store[entry.representative_id][args.field]
        print(f"{entry.weight:12.2f}  {label}")
    if args.stats:
        print_stats(result.counters)
    return 0


def _print_recovery(engine: IncrementalTopK) -> None:
    info = engine.last_recovery
    if info is None:
        return
    source = (
        f"checkpoint {info.checkpoint_path.name} "
        f"({info.checkpoint_entries} entries)"
        if info.checkpoint_path is not None
        else "empty state (no checkpoint)"
    )
    print(
        f"restored from {source}, replayed {info.entries_replayed} WAL "
        f"entries"
        + (
            f", absorbed {info.torn_tail_bytes}-byte torn tail"
            if info.torn_tail_bytes
            else ""
        )
        + (
            f", skipped {info.corrupt_checkpoints_skipped} corrupt "
            f"checkpoint(s)"
            if info.corrupt_checkpoints_skipped
            else ""
        ),
        file=sys.stderr,
    )


def _open_stream_engine(
    state_dir: str,
    field: str,
    ngram_threshold: float,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    store: str = "memory",
    scorer: CachedScorer | None = None,
) -> IncrementalTopK:
    """Restore an engine from *state_dir*, or start a fresh durable one."""
    levels = generic_levels(field, ngram_threshold)
    if has_state(state_dir):
        engine = IncrementalTopK.restore(
            state_dir,
            levels,
            tracer=tracer,
            metrics=metrics,
            store=store,
            scorer=scorer,
        )
        _print_recovery(engine)
        return engine
    return IncrementalTopK(
        levels,
        durability=state_dir,
        tracer=tracer,
        metrics=metrics,
        store=store,
        scorer=scorer,
    )


def run_stream(args: argparse.Namespace) -> int:
    if args.checkpoint_every < 0:
        raise ValueError("--checkpoint-every must be >= 0")
    if args.checkpoint_every and args.state_dir is None:
        raise ValueError("--checkpoint-every requires --state-dir")
    tracer, metrics = observability_from_args(args)
    if args.state_dir is not None:
        engine = _open_stream_engine(
            args.state_dir,
            args.field,
            args.ngram_threshold,
            tracer=tracer,
            metrics=metrics,
            store=args.store,
        )
    else:
        engine = IncrementalTopK(
            generic_levels(args.field, args.ngram_threshold),
            tracer=tracer,
            metrics=metrics,
            store=args.store,
        )
    try:
        store = load_csv(args.input, args.field, args.weight_field)
        for position, record in enumerate(store, start=1):
            engine.add(record.fields, record.weight)
            if args.checkpoint_every and position % args.checkpoint_every == 0:
                engine.checkpoint()
        if args.checkpoint_every:
            engine.checkpoint()
        result = engine.query(
            args.k, policy=policy_from_args(args), workers=args.workers
        )
        if result.degraded:
            _warn_degraded(result.degraded_reason)
        for group in result.groups[: args.k]:
            label = engine.current_store()[group.representative_id][args.field]
            print(f"{group.weight:12.2f}  {label}")
        if engine.dead_letters:
            print(
                f"warning: {len(engine.dead_letters)} record(s) quarantined "
                f"({engine.dead_letters_dropped} older dropped)",
                file=sys.stderr,
            )
        if args.stats:
            print_stats(result.counters)
    finally:
        engine.close()
    export_observability(args, tracer, metrics)
    return 0


def run_checkpoint(args: argparse.Namespace) -> int:
    engine = _open_stream_engine(
        args.state_dir, args.field, args.ngram_threshold, store=args.store
    )
    try:
        path = engine.checkpoint()
        print(
            f"checkpoint {path.name}: {engine.entries_applied} entries, "
            f"{len(engine)} records, {len(engine.collapsed_groups())} groups"
        )
    finally:
        engine.close()
    return 0


def run_restore(args: argparse.Namespace) -> int:
    engine = IncrementalTopK.restore(
        args.state_dir,
        generic_levels(args.field, args.ngram_threshold),
        store=args.store,
    )
    try:
        _print_recovery(engine)
        print(
            f"state ok: {engine.entries_applied} entries, {len(engine)} "
            f"records, {len(engine.collapsed_groups())} groups, "
            f"{len(engine.dead_letters)} dead letters "
            f"({engine.dead_letters_dropped} dropped); audit passed"
        )
    finally:
        engine.close()
    return 0


def run_health(args: argparse.Namespace) -> int:
    """The ``health`` verb: print every check, exit 0 only when ready.

    Exit codes: 0 = ready (degradations, if any, are itemized on
    stdout), 1 = not ready (state cannot be trusted).  Restoring the
    state directory already runs recovery's audit, so a directory that
    restores at all is structurally sound; ``--audit`` re-checks the
    live state explicitly.
    """
    engine = None
    if args.state_dir is not None:
        if args.field is None:
            raise ValueError("--state-dir requires --field")
        if not has_state(args.state_dir):
            raise ValueError(f"{args.state_dir} holds no stream state")
        engine = IncrementalTopK.restore(
            args.state_dir, generic_levels(args.field, args.ngram_threshold)
        )
    try:
        monitor = HealthMonitor(engine=engine, audit=args.audit)
        if args.metrics_out is not None:
            registry = MetricsRegistry()
            snapshot = monitor.publish(registry)
            with open(args.metrics_out, "w") as handle:
                handle.write(prometheus_text(registry))
        else:
            snapshot = monitor.snapshot()
        if args.json:
            print(json.dumps(snapshot.as_dict(), indent=2))
            return 0 if snapshot.ready else 1
        for check in snapshot.checks:
            marker = "ok  " if check.ok else "WARN"
            print(f"{marker}  {check.name}: {check.detail}")
        print(
            f"live={'yes' if snapshot.live else 'no'} "
            f"ready={'yes' if snapshot.ready else 'no'} "
            f"degraded={'yes' if snapshot.degraded else 'no'}"
        )
        return 0 if snapshot.ready else 1
    finally:
        if engine is not None:
            engine.close()


def _fault_plane_from_env():
    """Build the FaultPlane requested via ``$REPRO_FAULT_PLANE``.

    The variable holds a JSON object of :class:`FaultPlane` constructor
    arguments (``{"seed": 7, "wal_append_rate": 0.05}``).  This is the
    testing hook that lets a *subprocess* server run under seeded
    infrastructure faults — the in-process harness arms the plane
    directly.
    """
    spec = os.environ.get("REPRO_FAULT_PLANE")
    if not spec:
        return None
    from .testing.faultplane import FaultPlane

    payload = json.loads(spec)
    if not isinstance(payload, dict):
        raise ValueError("REPRO_FAULT_PLANE must be a JSON object")
    return FaultPlane(**payload)


def run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` verb: run the HTTP query service until drained.

    The bound address is announced on stdout (``serving on HOST:PORT``)
    as soon as the listener is up — before the engine finishes loading,
    during which readiness probes answer 503.  SIGTERM and SIGINT both
    trigger the graceful drain (stop admitting, apply the accepted
    insert queue, checkpoint, close the WAL); a POST /drain does the
    same remotely.  Exits 0 after a clean drain.
    """
    import asyncio
    import signal

    from .server import AdmissionConfig, HttpServer, QueryService, ServerConfig

    if args.checkpoint_every < 0:
        raise ValueError("--checkpoint-every must be >= 0")
    if args.checkpoint_every and args.state_dir is None:
        raise ValueError("--checkpoint-every requires --state-dir")
    metrics = MetricsRegistry() if args.metrics else None
    config = ServerConfig(
        host=args.host,
        port=args.port,
        label_field=args.field,
        admission=AdmissionConfig(
            max_pending_queries=args.max_pending_queries,
            max_concurrent_queries=args.max_concurrent_queries,
            max_pending_inserts=args.max_pending_inserts,
            default_deadline_seconds=args.default_deadline,
        ),
        checkpoint_every=args.checkpoint_every,
        checkpoint_on_drain=args.state_dir is not None,
        drain_grace_seconds=args.drain_grace,
        workers=args.workers or 1,
    )

    def loader() -> IncrementalTopK:
        scorer = generic_scorer(args.field, args.score_bias)
        if args.state_dir is not None:
            engine = _open_stream_engine(
                args.state_dir,
                args.field,
                args.ngram_threshold,
                metrics=metrics,
                store=args.store,
                scorer=scorer,
            )
        else:
            engine = IncrementalTopK(
                generic_levels(args.field, args.ngram_threshold),
                metrics=metrics,
                store=args.store,
                scorer=scorer,
            )
        if args.input is not None:
            store = load_csv(args.input, args.field, args.weight_field)
            for record in store:
                engine.add(record.fields, record.weight)
        return engine

    async def serve() -> int:
        service = QueryService(loader=loader, config=config, metrics=metrics)
        server = HttpServer(service, metrics=metrics)
        await server.start()
        print(f"serving on {config.host}:{server.port}", flush=True)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await service.start()
        stopper = asyncio.create_task(stop.wait())
        drained = asyncio.create_task(service.wait_drained())
        await asyncio.wait(
            {stopper, drained}, return_when=asyncio.FIRST_COMPLETED
        )
        report = await service.drain()
        await server.close()
        for task in (stopper, drained):
            task.cancel()
        print(f"drained: {json.dumps(report)}", file=sys.stderr)
        return 0

    plane = _fault_plane_from_env()
    if plane is not None:
        with plane.active(metrics=metrics):
            return asyncio.run(serve())
    return asyncio.run(serve())


def run_generate(args: argparse.Namespace) -> int:
    from .datasets import (
        generate_addresses,
        generate_citations,
        generate_restaurants,
        generate_students,
    )

    generators = {
        "citations": generate_citations,
        "students": generate_students,
        "addresses": generate_addresses,
        "restaurants": generate_restaurants,
    }
    dataset = generators[args.kind](n_records=args.n, seed=args.seed)
    field_names = list(dataset.store[0].fields)
    with open(args.output, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([*field_names, "weight", "gold_entity"])
        for record, label in zip(dataset.store, dataset.labels):
            writer.writerow(
                [*(record[f] for f in field_names), record.weight, label]
            )
    print(
        f"wrote {dataset.n_records} records over {dataset.n_entities} "
        f"entities to {args.output}"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "topk": run_topk,
        "rank": run_rank,
        "threshold": run_threshold,
        "stream": run_stream,
        "checkpoint": run_checkpoint,
        "restore": run_restore,
        "health": run_health,
        "serve": run_serve,
        "generate": run_generate,
    }
    try:
        return handlers[args.command](args)
    except WalCorruptionError as exc:
        # Mid-log WAL damage is recoverable by the operator (the
        # checkpoints are intact) but not by retrying the command —
        # a distinct exit code plus the one remediation that works.
        segment = exc.segment or "<unknown segment>"
        print(
            f"error: WAL corrupt at {segment}; restore from last "
            f"checkpoint with `python -m repro restore --state-dir ... "
            f"--field ...` after moving the damaged segment aside "
            f"(detail: {exc})",
            file=sys.stderr,
        )
        return 3
    except (ValueError, OSError) as exc:
        # Bad input or a damaged state directory is an operator problem,
        # not a bug — one line on stderr and exit 2, never a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Ctrl-C mid-query: flush whatever already reached the streams
        # so partial output (answers on stdout, --stats on stderr) ends
        # at a clean line boundary, say why we stopped, and exit with
        # the conventional 128+SIGINT code instead of a traceback.
        try:
            sys.stdout.flush()
        except OSError:
            pass
        print("\ninterrupted", file=sys.stderr, flush=True)
        return 130


if __name__ == "__main__":
    sys.exit(main())
